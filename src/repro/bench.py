"""Perf-trajectory harness behind ``repro bench``.

Every performance PR needs a trajectory to regress against, so this module
measures the simulation's hot kernels and end-to-end trial throughput and
emits a **machine-readable JSON report** (``BENCH_PR2.json`` by default)
with a stable schema:

``schema_version``
    integer, bumped only on breaking layout changes; consumers comparing
    trajectories across PRs must check it.
``workloads``
    the exact parameters measured (so future runs can reproduce them).
``kernels``
    micro-benchmarks ``[{name, params, seconds, per_call, repeats}]`` —
    per-kernel best-of-``repeats`` wall time.
``end_to_end``
    ``run_trials`` wall times per execution strategy, plus ``speedups``
    ratios (``new`` = incremental + pruned defaults, ``legacy`` = the
    PR 1 strategies via ``neighbor_options={'incremental': False,
    'prune': False}``, ``scalar`` = the reference engine).
``parity``
    cross-strategy result equality.  **Timing never fails a run; parity
    errors do** (exit code 1) — CI treats the benchmark as a smoke test,
    not a timing gate.
``protocols`` / ``experiments`` / ``mobility``
    optional sections: per-protocol batch-vs-scalar timings over the
    ``protocol_baselines`` workload, the sweep-scheduler experiment
    suite (quick-scale batch-vs-scalar per migrated experiment, rendered
    reports compared for parity), and per-mobility-model batch-vs-scalar
    timings over the flooding workload (every registered model is
    batch-native since PR 9, ferry/composite/timetable included;
    seed-for-seed parity gated).

Timings interleave the contestants round-robin (warm-up first, best-of-N)
so slow machine-wide drift hits every strategy equally — on shared CI
runners back-to-back timing loops can drift by 10-20%, which would
otherwise swamp the effects being measured.

Used by the ``repro bench`` CLI subcommand and shared with the
pytest-benchmark suites under ``benchmarks/`` (which import the workload
builders so micro- and macro-benchmarks stay in sync).
"""

from __future__ import annotations

import json
import math
import platform
import re
import time

import numpy as np

from repro.geometry.incremental import IncrementalBatchOccupancy, IncrementalGridIndex
from repro.geometry.grid import GridIndex
from repro.geometry.neighbors import BatchNeighborQuery, available_backends
from repro.simulation.config import FloodingConfig, standard_config
from repro.simulation.runner import run_trials

__all__ = [
    "SCHEMA_VERSION",
    "drifting_points",
    "batch_infection_workload",
    "run_benchmarks",
    "write_report",
    "render_table",
]

SCHEMA_VERSION = 1

#: The acceptance workload: canonical ``L = sqrt n`` scaling at n=2000,
#: 32 trials, seed 42 (the same configuration as
#: ``benchmarks/test_bench_trials.py`` under ``REPRO_FULL_BENCH=1``).
CANONICAL = {"n": 2000, "trials": 32, "radius_factor": 1.0, "seed": 42}
SMOKE = {"n": 400, "trials": 8, "radius_factor": 1.0, "seed": 42}

#: neighbor_options replaying the PR 1 strategies on the current code:
#: rebuild every spatial index per round, never prune sources.
LEGACY_OPTIONS = {"incremental": False, "prune": False}

#: The protocols acceptance workload: the ``protocol_baselines`` quick
#: scale exactly (n=2000, every registered baseline protocol, identical
#: trial seeds), timed under both engines.
PROTOCOLS_SCALE = "quick"
PROTOCOLS_SMOKE_N = 300

#: The sweep-scheduler experiment suite (every experiment migrated onto
#: :func:`repro.simulation.sweep.run_sweep`), timed at quick scale under
#: both engines with table parity gating the run.
EXPERIMENTS_SUITE_IDS = (
    "thm3_scaling",
    "thm3_radius",
    "thm3_speed",
    "regime_map",
    "mobility_ablation",
    "suburb_vs_cz",
    "pause_extension",
    "init_bias",
    "meeting_suburb",
    "thm10_growth",
)
#: Smoke runs keep CI fast with the cheapest third of the suite.
EXPERIMENTS_SMOKE_IDS = ("thm3_radius", "mobility_ablation", "suburb_vs_cz")

#: The adaptive arm: sweep experiments re-run under sequential stopping
#: (PR 6).  The acceptance gate is *unchanged verdicts with fewer trials*:
#: each experiment's pass/fail must match its fixed-budget run, and the
#: executed trial count (parsed from the experiment's adaptive note) must
#: not exceed the fixed budget.
EXPERIMENTS_ADAPTIVE_IDS = ("thm3_scaling", "thm3_radius", "thm3_speed", "regime_map")
ADAPTIVE_RULE = {"ci_width": 0.15, "min_trials": 2}
_ADAPTIVE_NOTE = re.compile(r"adaptive stopping: (\d+) trials vs (\d+) fixed budget")

#: The mobility suite: per-model batch-vs-scalar over the canonical
#: ``L = sqrt n`` flooding workload, one row per registered mobility model
#: — all batch-native since PR 9, the transit family (ferry / composite /
#: timetable) included.  ``mrwp-speed`` options are derived from the
#: workload speed at build time; ``timetable`` rider/board options are
#: derived from the workload size; parity gates every row.
MOBILITY_MODELS = (
    ("mrwp", {}),
    ("mrwp-pause", {"pause_time": 4.0}),
    ("mrwp-speed", None),  # {v_min, v_max} derived from the config speed
    ("rwp", {}),
    ("random-walk", {}),
    ("random-direction", {}),
    ("ferry", {}),
    ("composite", {"ferries": 5}),
    ("timetable", None),  # riders/dwell/capacity derived from the workload
)
MOBILITY_N = 1_000
MOBILITY_TRIALS = 8
MOBILITY_SMOKE_N = 300
MOBILITY_SMOKE_TRIALS = 4

#: The network suite: the PR 8 temporal-graph analytics workloads at the
#: canonical scale — a connectivity-profile radius sweep (incremental
#: union-find replay vs per-radius disk-graph rebuilds), exact MST
#: thresholds (vs the retained bisection, cross-validated within ``tol``),
#: batched journey times (vs per-source scalar temporal BFS), and batched
#: contact recording (vs per-replica scalar recording).  Every row is
#: parity-gated; parity failures exit 1, timing never does.
NETWORK_PROFILE = {"snapshots": 8, "n": 2000, "n_radii": 12, "seed": 42}
NETWORK_PROFILE_SMOKE = {"snapshots": 3, "n": 300, "n_radii": 6, "seed": 42}
NETWORK_JOURNEYS = {"n": 2000, "steps": 30, "sources": 24, "seed": 7}
NETWORK_JOURNEYS_SMOKE = {"n": 300, "steps": 10, "sources": 6, "seed": 7}
NETWORK_CONTACTS = {"replicas": 8, "n": 1000, "steps": 20, "seed": 9}
NETWORK_CONTACTS_SMOKE = {"replicas": 3, "n": 300, "steps": 8, "seed": 9}

#: The kernels suite (PR 10): every compiled-tier kernel timed against the
#: numpy reference path it replaces — same public entry point, tier
#: switched with :func:`repro.kernels.use_kernel_tier` — plus the
#: canonical end-to-end flooding run under ``kernels="compiled"`` vs
#: ``kernels="numpy"``.  Every row is parity-gated (the compiled tier is
#: bit-exact by contract), the compiled provider is warmed before any
#: timing, and a ``compile_events()`` delta of zero across the timed
#: region is itself a recorded check (warm-path-only measurement).
KERNEL_TIER_PAIR = {"batch": 16, "n": 2_000, "radius": 2.8}
KERNEL_TIER_PAIR_SMOKE = {"batch": 4, "n": 400, "radius": 2.8}
KERNEL_TIER_LEGS = {"total": 20_000, "iterations": 5}
KERNEL_TIER_LEGS_SMOKE = {"total": 2_000, "iterations": 3}
KERNEL_TIER_SPLICE = {"n": 20_000, "steps": 8}
KERNEL_TIER_SPLICE_SMOKE = {"n": 2_000, "steps": 4}
KERNEL_TIER_UNION = {"replicas": 8, "n": 2_000, "rounds": 6}
KERNEL_TIER_UNION_SMOKE = {"replicas": 3, "n": 400, "rounds": 3}
KERNEL_TIER_ZONES = {"batch": 16, "n": 2_000, "steps": 10}
KERNEL_TIER_ZONES_SMOKE = {"batch": 4, "n": 400, "steps": 4}


# ----------------------------------------------------------------------
# Workload builders (shared with benchmarks/)
# ----------------------------------------------------------------------
def drifting_points(n: int, side: float, step: float, steps: int, seed: int = 0) -> list:
    """A sequence of ``(n, 2)`` snapshots with bounded per-step motion.

    Mimics the indexing workload of the simulation loop: each snapshot
    moves every point by a uniform displacement of at most ``step`` per
    axis (reflected at the walls), so bucket churn is controlled by
    ``step / cell_size`` exactly like ``v * dt / cell_size`` in a run.
    """
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, side, size=(n, 2))
    out = [points.copy()]
    for _ in range(steps):
        points = points + rng.uniform(-step, step, size=(n, 2))
        points = np.abs(points)
        points = np.where(points > side, 2.0 * side - points, points)
        out.append(points.copy())
    return out


def batch_infection_workload(batch: int, n: int, side: float, seed: int = 1) -> tuple:
    """Positions + informed masks resembling a mid-flood round (a dense
    informed disk whose complement is the query set)."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0, side, size=(batch, n, 2))
    center = np.array([side / 2, side / 2])
    dist = np.linalg.norm(positions - center, axis=2)
    informed = dist < side * 0.3  # ~28% informed, frontier at the rim
    return positions, informed, ~informed


def _interleaved_best(contestants: dict, repeats: int) -> dict:
    """Best-of-``repeats`` seconds per contestant, interleaved round-robin."""
    best = {name: math.inf for name in contestants}
    for name, fn in contestants.items():  # warm-up, untimed
        fn()
    for _ in range(repeats):
        for name, fn in contestants.items():
            t0 = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# Kernel benchmarks
# ----------------------------------------------------------------------
def _bench_grid_index(repeats: int, smoke: bool) -> list:
    """Full counting-sort build vs incremental splice at two churn levels."""
    n = 2_000 if smoke else 20_000
    side = math.sqrt(n)
    cell = 2.0
    results = []
    for churn, step in (("low", 0.1), ("canonical", 0.7)):
        snapshots = drifting_points(n, side, step, steps=10, seed=3)

        def rebuild():
            index = GridIndex(side, cell)
            for snap in snapshots:
                index.build(snap)

        def update():
            index = IncrementalGridIndex(side, cell, rebuild_fraction=1.0)
            for snap in snapshots:
                index.update(snap)

        def auto():
            index = IncrementalGridIndex(side, cell)
            for snap in snapshots:
                index.update(snap)

        best = _interleaved_best(
            {"rebuild": rebuild, "update": update, "auto": auto}, repeats
        )
        index = IncrementalGridIndex(side, cell)
        for snap in snapshots:
            index.update(snap)
        # Per-round bucket churn of the splice path: exclude the initial
        # from-scratch build, which counts all n points as moved.
        moved_fraction = (index.n_moved - n) / ((index.n_updates - 1) * n)
        for name, seconds in best.items():
            results.append(
                {
                    "name": f"grid_index_{name}",
                    "params": {
                        "n": n,
                        "cell": cell,
                        "churn": churn,
                        "moved_fraction": round(moved_fraction, 4),
                    },
                    "seconds": seconds,
                    "per_call": seconds / len(snapshots),
                    "repeats": repeats,
                }
            )
    return results


def _bench_batch_occupancy(repeats: int, smoke: bool) -> list:
    """Counted occupancy refresh: full bincount vs +/-1 delta repair."""
    batch, n = (4, 500) if smoke else (16, 2_000)
    side = math.sqrt(n)
    cell = 1.25
    snapshots = [
        np.broadcast_to(s, (batch, n, 2)).copy()
        for s in drifting_points(n, side, 0.1, steps=10, seed=5)
    ]

    def rebuild():
        # What a non-incremental implementation pays per snapshot: fresh
        # cell assignment + full occupancy bincount.
        probe = IncrementalBatchOccupancy(side, batch, cell)
        mm = probe.m * probe.m
        offsets = np.arange(batch, dtype=np.int64)[:, None] * mm
        for snap in snapshots:
            gid = probe._cells_of(snap) + offsets
            np.bincount(gid.reshape(-1), minlength=batch * mm)

    def update():
        occ = IncrementalBatchOccupancy(side, batch, cell, track_counts=True, rebuild_fraction=1.0)
        for snap in snapshots:
            occ.update(snap)

    best = _interleaved_best({"rebuild": rebuild, "update": update}, repeats)
    return [
        {
            "name": f"batch_occupancy_{name}",
            "params": {"batch": batch, "n": n, "cell": cell},
            "seconds": seconds,
            "per_call": seconds / len(snapshots),
            "repeats": repeats,
        }
        for name, seconds in best.items()
    ]


def _bench_batch_any_within(repeats: int, smoke: bool) -> tuple:
    """The batched infection kernel, new defaults vs PR 1 strategies."""
    batch, n = (4, 500) if smoke else (16, 2_000)
    side, radius = math.sqrt(n) * 0.7071 * 2, 2.8
    positions, informed, uninformed = batch_infection_workload(batch, n, side)
    new_query = BatchNeighborQuery(side, batch)
    legacy_query = BatchNeighborQuery(side, batch, incremental=False, prune=False)

    def run(query):
        return query.any_within(positions, informed, uninformed, radius)

    best = _interleaved_best(
        {"new": lambda: run(new_query), "legacy": lambda: run(legacy_query)}, repeats
    )
    parity_ok = bool(np.array_equal(run(new_query), run(legacy_query)))
    kernels = [
        {
            "name": f"batch_any_within_{name}",
            "params": {"batch": batch, "n": n, "radius": radius},
            "seconds": seconds,
            "per_call": seconds,
            "repeats": repeats,
        }
        for name, seconds in best.items()
    ]
    return kernels, parity_ok


# ----------------------------------------------------------------------
# End-to-end benchmarks + parity
# ----------------------------------------------------------------------
def _config(workload: dict, engine: str, neighbor_options: dict = None) -> FloodingConfig:
    return standard_config(
        workload["n"],
        radius_factor=workload["radius_factor"],
        seed=workload["seed"],
        engine=engine,
        neighbor_options=dict(neighbor_options or {}),
    )


def _result_fingerprint(results) -> list:
    """The observable outcome of a trial batch, for parity comparison."""
    return [
        (
            r.flooding_time,
            r.completed,
            r.n_steps,
            r.source,
            tuple(np.asarray(r.informed_history).tolist()),
            r.cz_completion_time,
            r.suburb_completion_time,
            r.source_in_central_zone,
        )
        for r in results
    ]


def _bench_end_to_end(workload: dict, repeats: int, include_scalar: bool) -> tuple:
    trials = workload["trials"]
    strategies = {
        "batch": _config(workload, "batch"),
        "batch_legacy": _config(workload, "batch", LEGACY_OPTIONS),
    }
    if include_scalar:
        strategies["scalar"] = _config(workload, "scalar")

    fingerprints = {
        name: _result_fingerprint(run_trials(config, trials))
        for name, config in strategies.items()
    }
    reference = fingerprints["batch"]
    parity = {
        name: fingerprints[name] == reference for name in strategies if name != "batch"
    }

    best = _interleaved_best(
        {name: (lambda c=config: run_trials(c, trials)) for name, config in strategies.items()},
        repeats,
    )
    rows = [
        {"name": name, "workload": dict(workload), "seconds": seconds, "repeats": repeats}
        for name, seconds in best.items()
    ]
    speedups = {"batch_vs_legacy": best["batch_legacy"] / best["batch"]}
    if include_scalar:
        speedups["batch_vs_scalar"] = best["scalar"] / best["batch"]
    return rows, speedups, parity


def _parity_sweep(smoke: bool) -> dict:
    """Cross-strategy / cross-backend result equality at a small scale.

    Cheap enough for CI; the exhaustive randomized sweep lives in
    ``tests/test_flooding_parity.py``.
    """
    workload = {"n": 150, "trials": 6, "radius_factor": 1.0, "seed": 11}
    reference = None
    checks = {}
    option_grid = [
        {},
        {"incremental": False},
        {"prune": False},
        LEGACY_OPTIONS,
    ]
    for engine in ("scalar", "batch"):
        for options in option_grid:
            key = f"{engine}:" + (
                ",".join(f"{k}={v}" for k, v in sorted(options.items())) or "defaults"
            )
            fingerprint = _result_fingerprint(
                run_trials(_config(workload, engine, options), workload["trials"])
            )
            if reference is None:
                reference = fingerprint
                checks[key] = True
            else:
                checks[key] = fingerprint == reference
    for backend in available_backends():
        config = _config(workload, "batch").with_options(backend=backend)
        fingerprint = _result_fingerprint(run_trials(config, workload["trials"]))
        checks[f"batch:backend={backend}"] = fingerprint == reference
    return {"workload": workload, "checks": checks, "ok": all(checks.values())}


# ----------------------------------------------------------------------
# Protocol suite: every registered protocol, batch vs scalar
# ----------------------------------------------------------------------
def _protocol_variant_configs(smoke: bool, seed: int = 0) -> list:
    """``(label, batch_config, scalar_config, trials)`` per baseline variant.

    The full run times the ``protocol_baselines`` quick scale *exactly*
    (same configs, via the experiment's own workload builder); smoke runs
    shrink ``n`` so CI exercises the machinery and parity only.
    """
    from repro.experiments.protocol_baselines import variant_configs

    out = []
    for (label, batch_config, trials), (_, scalar_config, _) in zip(
        variant_configs(PROTOCOLS_SCALE, seed, engine="batch"),
        variant_configs(PROTOCOLS_SCALE, seed, engine="scalar"),
    ):
        if smoke:
            n = PROTOCOLS_SMOKE_N
            side = math.sqrt(n)
            radius = 1.4 * math.sqrt(math.log(n))
            overrides = {"n": n, "side": side, "radius": radius, "speed": 0.25 * radius}
            batch_config = batch_config.with_options(**overrides)
            scalar_config = scalar_config.with_options(**overrides)
        out.append((label, batch_config, scalar_config, trials))
    return out


def _protocol_fingerprint(results) -> list:
    """Result fingerprint including stall flags and protocol extras."""
    return [
        (
            r.flooding_time,
            r.completed,
            r.stalled,
            r.n_steps,
            r.source,
            tuple(np.asarray(r.informed_history).tolist()),
            tuple(sorted(
                (k, v) for k, v in r.extras.items() if k not in ("config", "n_agents")
            )),
        )
        for r in results
    ]


def _bench_protocols(repeats: int, smoke: bool) -> tuple:
    """Per-protocol batch-vs-scalar timings over the baselines workload.

    Returns ``(section, parity)``: the report's ``protocols`` section and
    the per-variant seed-for-seed parity verdicts (parity gates the run,
    timing never does).
    """
    variants = _protocol_variant_configs(smoke)
    parity = {}
    rows = []
    batch_total = scalar_total = 0.0
    for label, batch_config, scalar_config, trials in variants:
        parity[f"protocols:{label}"] = _protocol_fingerprint(
            run_trials(batch_config, trials)
        ) == _protocol_fingerprint(run_trials(scalar_config, trials))
        best = _interleaved_best(
            {
                "batch": lambda c=batch_config: run_trials(c, trials),
                "scalar": lambda c=scalar_config: run_trials(c, trials),
            },
            repeats,
        )
        batch_total += best["batch"]
        scalar_total += best["scalar"]
        rows.append(
            {
                "label": label,
                "protocol": batch_config.protocol,
                "trials": trials,
                "batch_seconds": best["batch"],
                "scalar_seconds": best["scalar"],
                "speedup": best["scalar"] / best["batch"],
            }
        )
    section = {
        "workload": {
            "scale": PROTOCOLS_SCALE,
            "n": variants[0][1].n,
            "trials": variants[0][3],
            "smoke": smoke,
        },
        "variants": rows,
        "batch_total_seconds": batch_total,
        "scalar_total_seconds": scalar_total,
        "speedup": scalar_total / batch_total,
    }
    return section, parity


# ----------------------------------------------------------------------
# Experiments suite: the sweep-scheduler experiments, batch vs scalar
# ----------------------------------------------------------------------
def _bench_experiments(repeats: int, smoke: bool, seed: int = 0) -> tuple:
    """Quick-scale batch-vs-scalar timings of the sweep-scheduler suite.

    Returns ``(section, parity)``.  Parity compares each experiment's full
    rendered report (table, notes, artifacts, verdict) across engines —
    the "identical tables before vs after migration" acceptance gate: the
    scalar run *is* the pre-migration point-by-point computation (same
    seed schedule), so auto == scalar means migrated == unmigrated.
    Timing is best-of-``repeats`` interleaved, like every other suite;
    parity gates the run, timing never does.

    Experiments in :data:`EXPERIMENTS_ADAPTIVE_IDS` additionally run an
    **adaptive arm** under :data:`ADAPTIVE_RULE` sequential stopping: the
    parity gate there is *unchanged verdict* (the adaptive run's pass/fail
    must match the fixed-budget run's) plus *no extra trials* (the
    executed count, parsed from the experiment's adaptive note, never
    exceeds the fixed budget) — the PR 6 acceptance criterion.
    """
    from repro.experiments.registry import get_spec
    from repro.simulation.sweep import StoppingRule

    ids = EXPERIMENTS_SMOKE_IDS if smoke else EXPERIMENTS_SUITE_IDS
    rows = []
    parity = {}
    auto_total = scalar_total = 0.0
    adaptive_total = 0.0
    adaptive_trials = fixed_trials = 0
    for eid in ids:
        spec = get_spec(eid)
        auto_result = spec.run(scale="quick", seed=seed, engine="auto")
        scalar_result = spec.run(scale="quick", seed=seed, engine="scalar")
        parity[f"experiments:{eid}"] = auto_result.to_text() == scalar_result.to_text()
        best = _interleaved_best(
            {
                "auto": lambda s=spec: s.run(scale="quick", seed=seed, engine="auto"),
                "scalar": lambda s=spec: s.run(scale="quick", seed=seed, engine="scalar"),
            },
            repeats,
        )
        auto_total += best["auto"]
        scalar_total += best["scalar"]
        row = {
            "id": eid,
            "auto_seconds": best["auto"],
            "scalar_seconds": best["scalar"],
            "speedup": best["scalar"] / best["auto"],
        }
        if eid in EXPERIMENTS_ADAPTIVE_IDS:
            rule = StoppingRule(**ADAPTIVE_RULE)
            t0 = time.perf_counter()
            adaptive = spec.run(scale="quick", seed=seed, engine="auto", stopping=rule)
            seconds = time.perf_counter() - t0
            match = _ADAPTIVE_NOTE.search("\n".join(adaptive.notes))
            executed, budget = (
                (int(match.group(1)), int(match.group(2))) if match else (-1, -1)
            )
            parity[f"experiments:{eid}:adaptive"] = (
                adaptive.passed == auto_result.passed
                and match is not None
                and executed <= budget
            )
            adaptive_total += seconds
            adaptive_trials += max(executed, 0)
            fixed_trials += max(budget, 0)
            row.update(
                {
                    "adaptive_seconds": seconds,
                    "adaptive_trials": executed,
                    "fixed_trials": budget,
                    "adaptive_passed": adaptive.passed,
                    "fixed_passed": auto_result.passed,
                }
            )
        rows.append(row)
    section = {
        "workload": {"scale": "quick", "seed": seed, "smoke": smoke, "ids": list(ids)},
        "experiments": rows,
        "auto_total_seconds": auto_total,
        "scalar_total_seconds": scalar_total,
        "speedup": scalar_total / auto_total,
        "adaptive": {
            "rule": dict(ADAPTIVE_RULE),
            "ids": [eid for eid in ids if eid in EXPERIMENTS_ADAPTIVE_IDS],
            "total_seconds": adaptive_total,
            "adaptive_trials": adaptive_trials,
            "fixed_trials": fixed_trials,
        },
    }
    return section, parity


# ----------------------------------------------------------------------
# Mobility suite: every registered mobility model, batch vs scalar
# ----------------------------------------------------------------------
def _mobility_variant_configs(smoke: bool, seed: int = 42) -> list:
    """``(name, batch_config, scalar_config, trials)`` per mobility model."""
    n = MOBILITY_SMOKE_N if smoke else MOBILITY_N
    trials = MOBILITY_SMOKE_TRIALS if smoke else MOBILITY_TRIALS
    out = []
    for name, options in MOBILITY_MODELS:
        batch = standard_config(
            n, radius_factor=1.0, seed=seed, mobility=name, engine="batch"
        )
        if options is None and name == "mrwp-speed":
            # A real per-trip range around the workload speed.
            options = {"v_min": 0.5 * batch.speed, "v_max": 1.5 * batch.speed}
        elif options is None and name == "timetable":
            # A scheduled backbone sized to the workload: ~1% vehicles with
            # dwelling stops, the rest riders who can board within R.
            vehicles = max(2, n // 100)
            options = {
                "riders": n - vehicles,
                "dwell": 2.0,
                "capacity": 8,
                "board_radius": batch.radius,
            }
        batch = batch.with_options(mobility_options=dict(options))
        out.append((name, batch, batch.with_options(engine="scalar"), trials))
    return out


def _bench_mobility(repeats: int, smoke: bool) -> tuple:
    """Per-mobility-model batch-vs-scalar timings over the flooding workload.

    Returns ``(section, parity)``: the report's ``mobility`` section and the
    per-model seed-for-seed parity verdicts (parity gates the run, timing
    never does).  Every registered model is batch-native since PR 9; the
    ``native`` flag stays in the row schema so a user-registered model
    without a batch twin (which would run through the replicated fallback
    at ~1x) is still visible in the report.
    """
    from repro.mobility import BATCH_MOBILITY_REGISTRY

    parity = {}
    rows = []
    batch_total = scalar_total = 0.0
    for name, batch_config, scalar_config, trials in _mobility_variant_configs(smoke):
        parity[f"mobility:{name}"] = _result_fingerprint(
            run_trials(batch_config, trials)
        ) == _result_fingerprint(run_trials(scalar_config, trials))
        best = _interleaved_best(
            {
                "batch": lambda c=batch_config: run_trials(c, trials),
                "scalar": lambda c=scalar_config: run_trials(c, trials),
            },
            repeats,
        )
        batch_total += best["batch"]
        scalar_total += best["scalar"]
        rows.append(
            {
                "model": name,
                "native": name in BATCH_MOBILITY_REGISTRY,
                "trials": trials,
                "batch_seconds": best["batch"],
                "scalar_seconds": best["scalar"],
                "speedup": best["scalar"] / best["batch"],
            }
        )
    section = {
        "workload": {
            "n": MOBILITY_SMOKE_N if smoke else MOBILITY_N,
            "trials": MOBILITY_SMOKE_TRIALS if smoke else MOBILITY_TRIALS,
            "radius_factor": 1.0,
            "seed": 42,
            "smoke": smoke,
        },
        "models": rows,
        "batch_total_seconds": batch_total,
        "scalar_total_seconds": scalar_total,
        "speedup": scalar_total / batch_total,
    }
    return section, parity


# ----------------------------------------------------------------------
# Network suite: temporal-graph analytics, batched vs scalar
# ----------------------------------------------------------------------
def _network_snapshots(batch: int, n: int, seed: int) -> np.ndarray:
    """A ``(B, n, 2)`` stack of stationary MRWP snapshots."""
    from repro.mobility.stationary import PalmStationarySampler

    side = math.sqrt(n)
    sampler = PalmStationarySampler(side)
    rng = np.random.default_rng(seed)
    return np.stack([sampler.sample(n, rng).positions for _ in range(batch)], axis=0)


def _rebuild_profile(positions: np.ndarray, side: float, radii: np.ndarray) -> dict:
    """The pre-incremental profile: one disk-graph rebuild per probe radius.

    Kept here as the benchmark contestant (and the parity oracle) for the
    incremental replay — a fresh spatial index, edge enumeration, and
    union-find per radius, exactly what ``connectivity_profile`` did
    before the length-sorted prefix replay.
    """
    from repro.network.disk_graph import DiskGraph

    n = positions.shape[0]
    giant = np.zeros(radii.size)
    ncomp = np.zeros(radii.size, dtype=np.intp)
    isolated = np.zeros(radii.size)
    connected = np.zeros(radii.size, dtype=bool)
    for k, radius in enumerate(radii):
        graph = DiskGraph(positions, max(float(radius), 0.0), side=side)
        giant[k] = graph.giant_component_fraction()
        ncomp[k] = graph.n_components()
        isolated[k] = float(np.count_nonzero(graph.isolated_mask())) / max(1, n)
        connected[k] = graph.is_connected()
    return {
        "giant_fraction": giant, "n_components": ncomp,
        "isolated_fraction": isolated, "connected": connected,
    }


def _bench_network(repeats: int, smoke: bool) -> tuple:
    """Batched temporal-graph analytics vs their scalar/rebuild baselines.

    Returns ``(section, parity)``.  Four workloads:

    * ``profile`` — :func:`~repro.network.connectivity.batch_connectivity_profile`
      over a snapshot stack vs per-radius disk-graph rebuilds (the
      incremental-replay parity is exact: canonical min-hooking labels
      make prefix unions order-independent).
    * ``threshold`` — exact MST bottleneck thresholds (batched) vs the
      retained per-snapshot bisection; the gate is agreement within the
      bisection tolerance, the headline is the speedup.
    * ``journeys`` — multi-source :func:`~repro.network.evolving.journey_times`
      under the batch engine vs the per-source scalar temporal BFS.
    * ``contacts`` — :func:`~repro.network.contacts.batch_record_contacts`
      over replica trajectories vs per-replica scalar recording.
    """
    from repro.mobility.mrwp import ManhattanRandomWaypoint
    from repro.network.connectivity import (
        batch_connectivity_profile,
        batch_connectivity_threshold,
        estimate_connectivity_threshold,
    )
    from repro.network.contacts import batch_record_contacts, record_contacts
    from repro.network.evolving import journey_times
    from repro.network.snapshots import SnapshotSeries, take_snapshots

    parity = {}
    rows = []

    # --- connectivity profile: incremental replay vs per-radius rebuilds
    profile_wl = dict(NETWORK_PROFILE_SMOKE if smoke else NETWORK_PROFILE)
    stack = _network_snapshots(profile_wl["snapshots"], profile_wl["n"], profile_wl["seed"])
    side = math.sqrt(profile_wl["n"])
    base = math.sqrt(math.log(profile_wl["n"]))
    radii = np.linspace(0.4, 2.0, profile_wl["n_radii"]) * base

    batched = batch_connectivity_profile(stack, side, radii)
    rebuilt = [_rebuild_profile(snapshot, side, radii) for snapshot in stack]
    parity["network:profile"] = all(
        np.array_equal(batched[key][b], rebuilt[b][key])
        for b in range(profile_wl["snapshots"])
        for key in ("giant_fraction", "n_components", "isolated_fraction", "connected")
    )
    best = _interleaved_best(
        {
            "batch": lambda: batch_connectivity_profile(stack, side, radii),
            "scalar": lambda: [_rebuild_profile(s, side, radii) for s in stack],
        },
        repeats,
    )
    rows.append(
        {
            "name": "profile",
            "workload": profile_wl,
            "batch_seconds": best["batch"],
            "scalar_seconds": best["scalar"],
            "speedup": best["scalar"] / best["batch"],
        }
    )

    # --- exact thresholds: batched MST bottleneck vs retained bisection
    tol = side * 1e-3
    mst_thresholds = batch_connectivity_threshold(stack, side)
    bisect_thresholds = np.array(
        [estimate_connectivity_threshold(s, side, method="bisect") for s in stack]
    )
    scalar_mst = np.array([estimate_connectivity_threshold(s, side) for s in stack])
    # The bisection returns its upper endpoint: always >= the exact
    # bottleneck, and within tol of it once the bracket closes.
    gaps = bisect_thresholds - mst_thresholds
    parity["network:threshold_mst_vs_bisect"] = bool(
        np.all(gaps >= -1e-9) and np.all(gaps <= tol + 1e-9)
    )
    parity["network:threshold_batch_vs_scalar"] = bool(
        np.allclose(mst_thresholds, scalar_mst, rtol=0.0, atol=1e-9)
    )
    best = _interleaved_best(
        {
            "batch": lambda: batch_connectivity_threshold(stack, side),
            "scalar": lambda: [
                estimate_connectivity_threshold(s, side, method="bisect") for s in stack
            ],
        },
        repeats,
    )
    rows.append(
        {
            "name": "threshold",
            "workload": {**profile_wl, "tol": tol, "scalar_method": "bisect"},
            "batch_seconds": best["batch"],
            "scalar_seconds": best["scalar"],
            "speedup": best["scalar"] / best["batch"],
            "max_abs_gap": float(np.max(np.abs(gaps))),
        }
    )

    # --- journeys: batched multi-source temporal BFS vs per-source scalar
    journeys_wl = dict(NETWORK_JOURNEYS_SMOKE if smoke else NETWORK_JOURNEYS)
    n = journeys_wl["n"]
    side = math.sqrt(n)
    radius = 1.0 * math.sqrt(math.log(n))
    rng = np.random.default_rng(journeys_wl["seed"])
    model = ManhattanRandomWaypoint(n, side, 0.25 * radius, rng=rng)
    series = SnapshotSeries(take_snapshots(model, journeys_wl["steps"]), radius, side)
    sources = rng.choice(n, size=journeys_wl["sources"], replace=False)
    batch_times = journey_times(series, sources, engine="batch")
    scalar_times = journey_times(series, sources, engine="scalar")
    parity["network:journeys"] = bool(np.array_equal(batch_times, scalar_times))
    best = _interleaved_best(
        {
            "batch": lambda: journey_times(series, sources, engine="batch"),
            "scalar": lambda: journey_times(series, sources, engine="scalar"),
        },
        repeats,
    )
    rows.append(
        {
            "name": "journeys",
            "workload": {**journeys_wl, "radius": radius},
            "batch_seconds": best["batch"],
            "scalar_seconds": best["scalar"],
            "speedup": best["scalar"] / best["batch"],
        }
    )

    # --- contacts: batched replica recording vs per-replica scalar
    contacts_wl = dict(NETWORK_CONTACTS_SMOKE if smoke else NETWORK_CONTACTS)
    n = contacts_wl["n"]
    side = math.sqrt(n)
    radius = 0.75 * math.sqrt(math.log(n))
    frames = np.stack(
        [
            take_snapshots(
                ManhattanRandomWaypoint(
                    n, side, 0.3 * radius, rng=np.random.default_rng([contacts_wl["seed"], b])
                ),
                contacts_wl["steps"],
            )
            for b in range(contacts_wl["replicas"])
        ],
        axis=0,
    )
    batch_traces = batch_record_contacts(frames, radius, side)
    scalar_traces = [
        record_contacts(SnapshotSeries(frames[b], radius, side), radius=radius)
        for b in range(contacts_wl["replicas"])
    ]
    parity["network:contacts"] = all(
        np.array_equal(bt.contacts_at(t), st.contacts_at(t))
        for bt, st in zip(batch_traces, scalar_traces)
        for t in range(contacts_wl["steps"] + 1)
    )
    best = _interleaved_best(
        {
            "batch": lambda: batch_record_contacts(frames, radius, side),
            "scalar": lambda: [
                record_contacts(SnapshotSeries(frames[b], radius, side), radius=radius)
                for b in range(contacts_wl["replicas"])
            ],
        },
        repeats,
    )
    rows.append(
        {
            "name": "contacts",
            "workload": {**contacts_wl, "radius": radius},
            "batch_seconds": best["batch"],
            "scalar_seconds": best["scalar"],
            "speedup": best["scalar"] / best["batch"],
        }
    )

    batch_total = sum(row["batch_seconds"] for row in rows)
    scalar_total = sum(row["scalar_seconds"] for row in rows)
    section = {
        "workload": {"smoke": smoke, "names": [row["name"] for row in rows]},
        "workloads": rows,
        "batch_total_seconds": batch_total,
        "scalar_total_seconds": scalar_total,
        "speedup": scalar_total / batch_total,
    }
    return section, parity


# ----------------------------------------------------------------------
# Kernels suite: compiled tier vs numpy, per kernel + end to end
# ----------------------------------------------------------------------
def _zone_workload_simulation(n: int, batch: int, seed: int):
    """A real :class:`BatchSimulation` (canonical scaling, zones on) whose
    ``_zone_fractions`` call site the zone-counts micro-benchmark drives."""
    from repro.core.flooding import build_zone_partition, select_source
    from repro.simulation.batch import (
        BatchSimulation,
        build_batch_model,
        build_batch_state,
    )

    config = standard_config(n, seed=seed, engine="batch")
    seed_seqs = np.random.SeedSequence(seed).spawn(batch)
    mobility_rngs, protocol_rngs, source_rngs = [], [], []
    for seed_seq in seed_seqs:
        mobility_ss, protocol_ss, source_ss = seed_seq.spawn(3)
        mobility_rngs.append(np.random.default_rng(mobility_ss))
        protocol_rngs.append(np.random.default_rng(protocol_ss))
        source_rngs.append(np.random.default_rng(source_ss))
    model = build_batch_model(config, mobility_rngs)
    sources = np.array(
        [
            select_source(model.positions[b], config.side, config.source, source_rngs[b])
            for b in range(batch)
        ],
        dtype=np.intp,
    )
    state = build_batch_state(config, sources, protocol_rngs)
    zones = build_zone_partition(
        config.n, config.side, config.radius, config.threshold_factor
    )
    return BatchSimulation(model, state, zones=zones), config.side


def _kernel_tier_workloads(smoke: bool) -> list:
    """One ``(name, params, run)`` triple per compiled-tier kernel.

    Each ``run(tier)`` drives the kernel's *public* entry point under
    :func:`repro.kernels.use_kernel_tier` — the same dispatch sites the
    simulation loop hits — and returns a canonical result object so the
    two tiers can be compared for exact equality.
    """
    from repro.kernels import use_kernel_tier
    from repro.mobility.kinematics import DenseLegScratch, advance_legs, advance_legs_dense
    from repro.network.batch_union_find import BatchUnionFind

    workloads = []

    # -- pair kernels: the batched infection test and the cut contacts --
    pair = dict(KERNEL_TIER_PAIR_SMOKE if smoke else KERNEL_TIER_PAIR)
    batch, n, radius = pair["batch"], pair["n"], pair["radius"]
    side = math.sqrt(n) * 0.7071 * 2
    positions, informed, uninformed = batch_infection_workload(batch, n, side)
    query = BatchNeighborQuery(side, batch)

    def run_any_within(tier):
        with use_kernel_tier(tier):
            return query.any_within(positions, informed, uninformed, radius)

    def run_contacts(tier):
        with use_kernel_tier(tier):
            r, s, q = query.bind(positions).contacts_within(informed, uninformed, radius)
        # Emission order is unspecified on every backend: canonicalize by
        # the unique (replica, source, query) key, like the protocols do.
        order = np.argsort((r * n + s) * n + q, kind="stable")
        return r[order].tobytes() + s[order].tobytes() + q[order].tobytes()

    workloads.append(("batch_any_within", pair, run_any_within))
    workloads.append(("batch_contacts", pair, run_contacts))

    # -- leg kernels: masked carry-over advance + dense full-array pass --
    legs = dict(KERNEL_TIER_LEGS_SMOKE if smoke else KERNEL_TIER_LEGS)
    total, iterations = legs["total"], legs["iterations"]
    leg_side = math.sqrt(total)
    rng = np.random.default_rng(17)
    leg_pos = rng.uniform(0.0, leg_side, size=(total, 2))
    leg_target = rng.uniform(0.0, leg_side, size=(total, 2))
    leg_budget = rng.uniform(0.0, 3.0, size=total)
    leg_speed = rng.uniform(0.5, 1.5, size=total)
    leg_idx = np.nonzero(leg_budget > 0.2)[0]
    moving = leg_budget > 0.2
    n_moving = int(np.count_nonzero(moving))
    eps = 1e-9 * leg_side

    def run_advance_legs(tier):
        pos, target, budget = leg_pos.copy(), leg_target.copy(), leg_budget.copy()
        with use_kernel_tier(tier):
            for _ in range(iterations):
                done = advance_legs(pos, target, budget, leg_idx, eps, speed=leg_speed)
        return pos.tobytes() + budget.tobytes() + done.tobytes()

    def run_advance_legs_dense(tier):
        pos, target, budget = leg_pos.copy(), leg_target.copy(), leg_budget.copy()
        scratch = DenseLegScratch(total)
        with use_kernel_tier(tier):
            for _ in range(iterations):
                done = advance_legs_dense(
                    pos, target, budget, moving, n_moving, eps, scratch, speed=leg_speed
                )
        return pos.tobytes() + budget.tobytes() + done.tobytes()

    workloads.append(("advance_legs", legs, run_advance_legs))
    workloads.append(("advance_legs_dense", legs, run_advance_legs_dense))

    # -- incremental index kernels: argsort-splice + occupancy delta --
    splice = dict(KERNEL_TIER_SPLICE_SMOKE if smoke else KERNEL_TIER_SPLICE)
    sp_n, sp_steps = splice["n"], splice["steps"]
    sp_side, sp_cell = math.sqrt(sp_n), 2.0
    sp_snapshots = drifting_points(sp_n, sp_side, 0.7, steps=sp_steps, seed=3)

    def run_grid_splice(tier):
        index = IncrementalGridIndex(sp_side, sp_cell, rebuild_fraction=1.0)
        with use_kernel_tier(tier):
            for snap in sp_snapshots:
                index.update(snap)
        return index._order.tobytes() + index._sorted_ids.tobytes()

    occ_batch, occ_n = (4, 500) if smoke else (16, 2_000)
    occ_side, occ_cell = math.sqrt(occ_n), 1.25
    occ_snapshots = [
        np.broadcast_to(s, (occ_batch, occ_n, 2)).copy()
        for s in drifting_points(occ_n, occ_side, 0.1, steps=sp_steps, seed=5)
    ]

    def run_occupancy_delta(tier):
        occ = IncrementalBatchOccupancy(
            occ_side, occ_batch, occ_cell, track_counts=True, rebuild_fraction=1.0
        )
        with use_kernel_tier(tier):
            for snap in occ_snapshots:
                occ.update(snap)
        return occ.counts.copy()

    workloads.append(("grid_splice", {"n": sp_n, "steps": sp_steps}, run_grid_splice))
    workloads.append(
        ("occupancy_delta", {"batch": occ_batch, "n": occ_n, "steps": sp_steps}, run_occupancy_delta)
    )

    # -- union-find fixpoint: incremental batched connectivity --
    union = dict(KERNEL_TIER_UNION_SMOKE if smoke else KERNEL_TIER_UNION)
    uf_replicas, uf_n, uf_rounds = union["replicas"], union["n"], union["rounds"]
    uf_rng = np.random.default_rng(23)
    uf_edges = [
        (uf_rng.integers(0, uf_n, size=4 * uf_n), uf_rng.integers(0, uf_n, size=4 * uf_n))
        for _ in range(uf_rounds)
    ]

    def run_union_fixpoint(tier):
        uf = BatchUnionFind(uf_replicas, uf_n)
        with use_kernel_tier(tier):
            for u, v in uf_edges:
                uf.add_edges(u, v)
        return uf.labels()

    workloads.append(("union_fixpoint", union, run_union_fixpoint))

    # -- zone classification: CZ membership counts for completion tracking --
    # Drives the hot-loop call site itself (``_zone_fractions`` with
    # ``need_mask=False``) on a real batch simulation, so the row times the
    # same dispatch the lock-step engine hits every recorded step.
    zones_p = dict(KERNEL_TIER_ZONES_SMOKE if smoke else KERNEL_TIER_ZONES)
    zc_batch, zc_n, zc_steps = zones_p["batch"], zones_p["n"], zones_p["steps"]
    zc_sim, zc_side = _zone_workload_simulation(zc_n, zc_batch, seed=29)
    zc_rng = np.random.default_rng(31)
    zc_snapshots = [
        zc_rng.uniform(0.0, zc_side, size=(zc_batch, zc_n, 2)) for _ in range(zc_steps)
    ]
    zc_sim.protocol.informed[:] = zc_rng.random((zc_batch, zc_n)) < 0.5
    zc_rows = np.arange(zc_batch, dtype=np.intp)
    zc_counts = np.count_nonzero(zc_sim.protocol.informed, axis=1)

    def run_zone_counts(tier):
        out = []
        with use_kernel_tier(tier):
            for snap in zc_snapshots:
                _mask, cz_frac, suburb_frac = zc_sim._zone_fractions(
                    snap, zc_rows, zc_counts, need_mask=False
                )
                out.append(cz_frac.tobytes() + suburb_frac.tobytes())
        return b"".join(out)

    workloads.append(("zone_counts", zones_p, run_zone_counts))
    return workloads


def _kernel_results_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(np.asarray(a), np.asarray(b)))
    return a == b


def _bench_kernel_tier(workload: dict, repeats: int, smoke: bool) -> tuple:
    """The compiled-kernel-tier suite: per-kernel micro rows + end to end.

    Returns ``(section, micro_rows, parity_checks)``; ``micro_rows`` also
    land in the report's top-level ``kernels`` list.  Without a compiled
    provider (no numba, C toolchain absent or disabled) the suite still
    runs and records the numpy rows — the compiled columns and the
    end-to-end compiled arm are simply absent.
    """
    from repro.kernels import (
        available_kernel_backends,
        compile_events,
        kernel_backend,
        kernel_tier_label,
        warm_kernels,
    )

    provider = kernel_backend()
    tiers = ("compiled", "numpy") if provider is not None else ("numpy",)
    checks = {}

    # Warm the compiled provider (cext build / numba JIT of every kernel
    # signature) before anything is timed, then require zero compile
    # events across the measured region: best-of-N must compare warm
    # steady-state paths only.
    warm_kernels()
    events_before = compile_events()

    micro_rows = []
    for name, params, run in _kernel_tier_workloads(smoke):
        if provider is not None:
            checks[f"kernels:{name}"] = _kernel_results_equal(
                run("compiled"), run("numpy")
            )
        best = _interleaved_best(
            {tier: (lambda t=tier: run(t)) for tier in tiers}, repeats
        )
        for tier in tiers:
            micro_rows.append(
                {
                    "name": f"{name}[{tier}]",
                    "params": dict(params),
                    "seconds": best[tier],
                    "per_call": best[tier],
                    "repeats": repeats,
                }
            )
        if provider is not None:
            micro_rows[-2]["speedup"] = best["numpy"] / best["compiled"]

    # End to end: the canonical flooding workload under kernels="compiled"
    # vs kernels="numpy" (the PR 9 path, unchanged), fingerprint-gated.
    trials = workload["trials"]
    configs = {
        tier: _config(workload, "batch").with_options(kernels=tier) for tier in tiers
    }
    fingerprints = {
        tier: _result_fingerprint(run_trials(config, trials))
        for tier, config in configs.items()
    }
    if provider is not None:
        checks["kernels:end_to_end"] = fingerprints["compiled"] == fingerprints["numpy"]
    best = _interleaved_best(
        {tier: (lambda c=configs[tier]: run_trials(c, trials)) for tier in tiers},
        repeats,
    )
    end_to_end = {
        f"{tier}_seconds": seconds for tier, seconds in best.items()
    }
    if provider is not None:
        end_to_end["speedup"] = best["numpy"] / best["compiled"]

    checks["kernels:warm_path_only"] = compile_events() == events_before

    section = {
        "workload": dict(workload),
        "provider": provider,
        "tier_label": kernel_tier_label("auto"),
        "backends": available_kernel_backends(),
        "end_to_end": end_to_end,
        "compile_events": events_before,
        "micro": [row["name"] for row in micro_rows],
    }
    return section, micro_rows, checks


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_benchmarks(
    smoke: bool = False,
    repeats: int = None,
    label: str = "PR3",
    baselines: dict = None,
    suite: str = "all",
) -> dict:
    """Measure kernels + end-to-end throughput; returns the report dict.

    Args:
        smoke: small scales for CI (timings still recorded, but the run
            exists to exercise the machinery and the parity checks).
        repeats: best-of-N timing repeats (default 3, smoke 2).
        label: free-form tag stored in the report (e.g. the PR number).
        baselines: recorded external measurements ``{name: seconds}``
            (e.g. a previous PR's engine timed from its own checkout on
            the same host) — stored verbatim and turned into
            ``speedups['batch_vs_<name>']`` ratios against this run's
            ``batch`` time; names ending in ``"_protocols"`` become
            ``speedups['protocols_batch_vs_<name>']`` ratios against the
            protocol suite's batch total, and names ending in
            ``"_experiments"`` become
            ``speedups['experiments_auto_vs_<name>']`` ratios against the
            experiments suite's auto-engine total, and names ending in
            ``"_mobility"`` become ``speedups['mobility_batch_vs_<name>']``
            ratios against the mobility suite's batch total; names
            containing ``":"`` are recorded verbatim with no derived ratio
            (per-workload provenance annotations).  Only comparable when
            measured on the same machine with the same workload;
            provenance belongs in the label / commit message.
        suite: ``"core"`` (the kernel + flooding end-to-end suite),
            ``"protocols"`` (every registered protocol, batch vs scalar,
            parity-gated), ``"experiments"`` (the sweep-scheduler
            experiment suite at quick scale, batch vs scalar, table-parity
            gated), ``"mobility"`` (per-mobility-model batch vs scalar
            over the flooding workload, parity-gated), ``"network"``
            (the temporal-graph analytics workloads — incremental
            connectivity profiles, exact MST thresholds, batched journeys
            and contact recording — vs their scalar/rebuild baselines,
            parity-gated), ``"kernels"`` (the compiled kernel tier vs the
            numpy reference paths: per-kernel micro-benchmarks through the
            public dispatch sites plus the canonical end-to-end run under
            ``kernels="compiled"`` vs ``kernels="numpy"``, every row
            parity-gated, provider warmed before timing with a zero
            compile-event delta asserted), or ``"all"``.
    """
    if suite not in ("core", "protocols", "experiments", "mobility", "network", "kernels", "all"):
        raise ValueError(
            "suite must be 'core', 'protocols', 'experiments', 'mobility', "
            f"'network', 'kernels' or 'all', got {suite!r}"
        )
    if repeats is None:
        repeats = 2 if smoke else 3
    workload = dict(SMOKE if smoke else CANONICAL)
    baselines = dict(baselines or {})

    kernels = []
    end_to_end = []
    speedups = {}
    parity = {"workload": None, "checks": {}, "ok": True}
    protocols = None

    if suite in ("core", "all"):
        kernels.extend(_bench_grid_index(repeats, smoke))
        kernels.extend(_bench_batch_occupancy(repeats, smoke))
        any_within_kernels, kernel_parity = _bench_batch_any_within(repeats, smoke)
        kernels.extend(any_within_kernels)

        end_to_end, speedups, e2e_parity = _bench_end_to_end(
            workload, repeats, include_scalar=True
        )
        parity = _parity_sweep(smoke)
        parity["checks"]["kernel:batch_any_within"] = kernel_parity
        for name, ok in e2e_parity.items():
            parity["checks"][f"end_to_end:{name}"] = ok

    if suite in ("protocols", "all"):
        protocols, protocol_parity = _bench_protocols(repeats, smoke)
        parity["checks"].update(protocol_parity)

    experiments = None
    if suite in ("experiments", "all"):
        experiments, experiment_parity = _bench_experiments(repeats, smoke)
        parity["checks"].update(experiment_parity)

    mobility = None
    if suite in ("mobility", "all"):
        mobility, mobility_parity = _bench_mobility(repeats, smoke)
        parity["checks"].update(mobility_parity)

    network = None
    if suite in ("network", "all"):
        network, network_parity = _bench_network(repeats, smoke)
        parity["checks"].update(network_parity)

    kernel_tier = None
    if suite in ("kernels", "all"):
        kernel_tier, tier_rows, tier_parity = _bench_kernel_tier(workload, repeats, smoke)
        kernels.extend(tier_rows)
        parity["checks"].update(tier_parity)

    for name, seconds in baselines.items():
        if ":" in name:
            # Provenance annotations (e.g. "pr4:pause_extension_auto"):
            # recorded verbatim in ``baselines`` with no derived ratio.
            continue
        if name.endswith("_protocols"):
            if protocols is not None:
                speedups[f"protocols_batch_vs_{name}"] = (
                    float(seconds) / protocols["batch_total_seconds"]
                )
        elif name.endswith("_experiments"):
            if experiments is not None:
                speedups[f"experiments_auto_vs_{name}"] = (
                    float(seconds) / experiments["auto_total_seconds"]
                )
        elif name.endswith("_mobility"):
            if mobility is not None:
                speedups[f"mobility_batch_vs_{name}"] = (
                    float(seconds) / mobility["batch_total_seconds"]
                )
        elif end_to_end:
            batch_seconds = next(r["seconds"] for r in end_to_end if r["name"] == "batch")
            speedups[f"batch_vs_{name}"] = float(seconds) / batch_seconds
    parity["ok"] = all(parity["checks"].values())

    try:
        import scipy

        scipy_version = scipy.__version__
    except ImportError:  # pragma: no cover - depends on environment
        scipy_version = None
    try:
        import numba

        numba_version = numba.__version__
    except ImportError:  # pragma: no cover - depends on environment
        numba_version = None
    from repro.kernels import kernel_tier_label

    report = {
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "smoke": smoke,
        "suite": suite,
        "created_unix": int(time.time()),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy_version,
            "numba": numba_version,
            "kernel_tier": kernel_tier_label("auto"),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "workloads": {"end_to_end": workload},
        "baselines": {name: float(seconds) for name, seconds in baselines.items()},
        "kernels": kernels,
        "end_to_end": end_to_end,
        "speedups": speedups,
        "parity": parity,
    }
    if protocols is not None:
        report["workloads"]["protocols"] = protocols["workload"]
        report["protocols"] = protocols
        speedups["protocol_baselines_batch_vs_scalar"] = protocols["speedup"]
    if experiments is not None:
        report["workloads"]["experiments"] = experiments["workload"]
        report["experiments"] = experiments
        speedups["experiments_auto_vs_scalar"] = experiments["speedup"]
    if mobility is not None:
        report["workloads"]["mobility"] = mobility["workload"]
        report["mobility"] = mobility
        speedups["mobility_batch_vs_scalar"] = mobility["speedup"]
    if network is not None:
        report["workloads"]["network"] = network["workload"]
        report["network"] = network
        for row in network["workloads"]:
            speedups[f"network_{row['name']}_batch_vs_scalar"] = row["speedup"]
        speedups["network_batch_vs_scalar"] = network["speedup"]
    if kernel_tier is not None:
        report["workloads"]["kernel_tier"] = kernel_tier["workload"]
        report["kernel_tier"] = kernel_tier
        if "speedup" in kernel_tier["end_to_end"]:
            speedups["end_to_end_compiled_vs_numpy"] = kernel_tier["end_to_end"]["speedup"]
    return report


def render_table(report: dict) -> str:
    """Human-readable summary of a report."""
    lines = []
    lines.append(
        f"repro bench [{report['label']}] schema v{report['schema_version']}"
        + (" (smoke)" if report["smoke"] else "")
    )
    lines.append("")
    if report["kernels"]:
        lines.append(f"{'kernel':38s} {'per call':>12s}")
        for kernel in report["kernels"]:
            name = kernel["name"]
            churn = kernel["params"].get("churn")
            if churn is not None:
                name = f"{name}[{churn}]"
            lines.append(f"{name:38s} {kernel['per_call'] * 1e3:9.3f} ms")
        lines.append("")
    if report["end_to_end"]:
        workload = report["workloads"]["end_to_end"]
        lines.append(
            f"end to end (n={workload['n']}, trials={workload['trials']}, "
            f"radius_factor={workload['radius_factor']}, seed={workload['seed']}):"
        )
        for row in report["end_to_end"]:
            lines.append(f"  {row['name']:16s} {row['seconds']:8.3f} s")
    protocols = report.get("protocols")
    if protocols is not None:
        workload = protocols["workload"]
        lines.append("")
        lines.append(
            f"protocol suite (protocol_baselines {workload['scale']}, "
            f"n={workload['n']}, trials={workload['trials']}):"
        )
        for row in protocols["variants"]:
            lines.append(
                f"  {row['label']:22s} batch {row['batch_seconds']:7.3f} s  "
                f"scalar {row['scalar_seconds']:7.3f} s  {row['speedup']:5.2f}x"
            )
        lines.append(
            f"  {'TOTAL':22s} batch {protocols['batch_total_seconds']:7.3f} s  "
            f"scalar {protocols['scalar_total_seconds']:7.3f} s  "
            f"{protocols['speedup']:5.2f}x"
        )
    mobility = report.get("mobility")
    if mobility is not None:
        workload = mobility["workload"]
        lines.append("")
        lines.append(
            f"mobility suite (flooding, n={workload['n']}, "
            f"trials={workload['trials']}):"
        )
        for row in mobility["models"]:
            tag = "" if row["native"] else " (replicated)"
            lines.append(
                f"  {row['model'] + tag:22s} batch {row['batch_seconds']:7.3f} s  "
                f"scalar {row['scalar_seconds']:7.3f} s  {row['speedup']:5.2f}x"
            )
        lines.append(
            f"  {'TOTAL':22s} batch {mobility['batch_total_seconds']:7.3f} s  "
            f"scalar {mobility['scalar_total_seconds']:7.3f} s  "
            f"{mobility['speedup']:5.2f}x"
        )
    network = report.get("network")
    if network is not None:
        lines.append("")
        lines.append("network suite (temporal-graph analytics, batched vs scalar):")
        for row in network["workloads"]:
            lines.append(
                f"  {row['name']:22s} batch {row['batch_seconds']:7.3f} s  "
                f"scalar {row['scalar_seconds']:7.3f} s  {row['speedup']:5.2f}x"
            )
        lines.append(
            f"  {'TOTAL':22s} batch {network['batch_total_seconds']:7.3f} s  "
            f"scalar {network['scalar_total_seconds']:7.3f} s  "
            f"{network['speedup']:5.2f}x"
        )
    kernel_tier = report.get("kernel_tier")
    if kernel_tier is not None:
        lines.append("")
        provider = kernel_tier["provider"] or "none"
        lines.append(
            f"kernel tier (provider={provider}, label={kernel_tier['tier_label']}):"
        )
        e2e = kernel_tier["end_to_end"]
        for tier in ("compiled", "numpy"):
            key = f"{tier}_seconds"
            if key in e2e:
                lines.append(f"  end_to_end[{tier}] {e2e[key]:8.3f} s")
        if "speedup" in e2e:
            lines.append(f"  end_to_end compiled vs numpy {e2e['speedup']:5.2f}x")
    experiments = report.get("experiments")
    if experiments is not None:
        workload = experiments["workload"]
        lines.append("")
        lines.append(
            f"experiments suite (sweep scheduler, scale={workload['scale']}, "
            f"seed={workload['seed']}):"
        )
        for row in experiments["experiments"]:
            lines.append(
                f"  {row['id']:22s} auto  {row['auto_seconds']:7.3f} s  "
                f"scalar {row['scalar_seconds']:7.3f} s  {row['speedup']:5.2f}x"
            )
        lines.append(
            f"  {'TOTAL':22s} auto  {experiments['auto_total_seconds']:7.3f} s  "
            f"scalar {experiments['scalar_total_seconds']:7.3f} s  "
            f"{experiments['speedup']:5.2f}x"
        )
        adaptive = experiments.get("adaptive")
        if adaptive and adaptive["ids"]:
            lines.append(
                f"  adaptive arm ({', '.join(adaptive['ids'])}): "
                f"{adaptive['adaptive_trials']} trials vs "
                f"{adaptive['fixed_trials']} fixed "
                f"({adaptive['total_seconds']:.3f} s, verdict-parity gated)"
            )
    for name, ratio in report["speedups"].items():
        lines.append(f"  {name:40s} {ratio:5.2f}x")
    lines.append("")
    bad = [name for name, ok in report["parity"]["checks"].items() if not ok]
    if bad:
        lines.append(f"PARITY FAILURES: {bad}")
    else:
        lines.append(f"parity: {len(report['parity']['checks'])} checks ok")
    return "\n".join(lines)


def write_report(path: str, report: dict) -> str:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
