"""The density condition of Lemma 7.

The Central-Zone flooding argument needs every CZ cell's *core* to hold at
least ``eta * log n`` agents at every step of the observation window (the
event ``D``).  This module measures core occupancy over a run so the
experiment suite can validate Lemma 7 empirically.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.cells import CellGrid
from repro.core.zones import ZonePartition
from repro.mobility.base import MobilityModel

__all__ = ["DensityCondition", "core_occupancy_of_central_cells"]


def core_occupancy_of_central_cells(
    grid: CellGrid, zones: ZonePartition, positions: np.ndarray
) -> np.ndarray:
    """Number of agents in the core of each Central-Zone cell.

    Returns:
        integer array over CZ cells (order: flat cell id ascending).
    """
    counts = grid.occupancy(positions, core_only=True).ravel()
    return counts[zones.central_cell_ids()]


class DensityCondition:
    """Monitor of Lemma 7's density condition over a mobility run.

    Args:
        grid: cell partition (Ineq. 6).
        zones: Central Zone / Suburb partition (Def. 4).
        eta: the constant in the ``eta * log n`` occupancy requirement.
    """

    def __init__(self, grid: CellGrid, zones: ZonePartition, eta: float = 1.0):
        if eta <= 0:
            raise ValueError(f"eta must be positive, got {eta}")
        self.grid = grid
        self.zones = zones
        self.eta = float(eta)
        self.required = self.eta * math.log(zones.n)

    def check(self, positions: np.ndarray) -> bool:
        """Does the density condition hold for this snapshot?"""
        occupancy = core_occupancy_of_central_cells(self.grid, self.zones, positions)
        if occupancy.size == 0:
            return True
        return bool(occupancy.min() >= self.required)

    def min_core_occupancy(self, positions: np.ndarray) -> int:
        """The smallest core occupancy over CZ cells in this snapshot."""
        occupancy = core_occupancy_of_central_cells(self.grid, self.zones, positions)
        if occupancy.size == 0:
            return 0
        return int(occupancy.min())

    def monitor(self, model: MobilityModel, steps: int, dt: float = 1.0) -> dict:
        """Run ``model`` for ``steps`` steps tracking the density condition.

        Returns:
            dict with ``min_occupancy`` (per-step array, including the
            initial snapshot), ``holds_fraction`` (share of steps at which
            the condition held), and ``required`` (the threshold used).
        """
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        series = np.empty(steps + 1, dtype=np.intp)
        series[0] = self.min_core_occupancy(model.positions)
        for t in range(1, steps + 1):
            series[t] = self.min_core_occupancy(model.step(dt))
        holds = np.count_nonzero(series >= self.required) / series.size
        return {
            "min_occupancy": series,
            "holds_fraction": float(holds),
            "required": self.required,
        }
