"""Turn statistics and good segments (Lemmas 13 and 14).

The Suburb analysis rests on two trajectory properties of an MRWP agent
observed over a window ``[t, t + tau]``:

* **Lemma 13** — the number of turns ``H_{t,tau}`` is w.h.p. at most
  ``4 log n / log(L / (v tau))``;
* **Lemma 14** — w.h.p. the agent travels one axis-aligned segment of
  length at least ``v tau log(L/(v tau)) / (40 log n)`` *directed toward
  the Central Zone* (a "good segment").

This module measures both quantities on simulated trajectories.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.mrwp import ManhattanRandomWaypoint

__all__ = [
    "count_turns_in_window",
    "max_turns_in_window",
    "longest_inward_run",
    "longest_inward_runs_from_frames",
]


def count_turns_in_window(
    model: ManhattanRandomWaypoint, tau_steps: int, dt: float = 1.0
) -> np.ndarray:
    """Per-agent turn counts over the next ``tau_steps`` steps of ``model``.

    Turns are direction-change events: Manhattan corners plus trip arrivals
    (the events the ``H_{t,tau}`` statistic counts).  The model is advanced
    in place.
    """
    if tau_steps < 0:
        raise ValueError(f"tau_steps must be non-negative, got {tau_steps}")
    before = model.turn_counts.copy()
    for _ in range(tau_steps):
        model.step(dt)
    return model.turn_counts - before


def max_turns_in_window(model: ManhattanRandomWaypoint, tau_steps: int, dt: float = 1.0) -> int:
    """Maximum over agents of the turn count in the window (Lemma 13's subject)."""
    return int(count_turns_in_window(model, tau_steps, dt).max())


def _fold_toward_center(frames: np.ndarray, side: float) -> np.ndarray:
    """Coordinate fold ``u -> min(u, L - u)``.

    After folding, movement "toward the Central Zone" from any corner is
    movement that *increases* the folded coordinate, so all four corners are
    treated uniformly.
    """
    return np.minimum(frames, side - frames)


def longest_inward_runs_from_frames(frames: np.ndarray, side: float) -> np.ndarray:
    """Longest center-directed axis-aligned run per agent in a trajectory.

    Args:
        frames: positions of shape ``(T + 1, n, 2)``
            (see :func:`repro.mobility.base.record_trajectory`).
        side: square side ``L``.

    Returns:
        float array of shape ``(n,)`` — for each agent, the greatest total
        length of a maximal run of consecutive steps that move along a
        single axis, strictly toward the center (in the folded coordinate).
        Steps that turn mid-step (L-shaped displacement) break runs, making
        the estimate conservative with respect to Lemma 14.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim != 3 or frames.shape[2] != 2:
        raise ValueError(f"frames must have shape (T+1, n, 2), got {frames.shape}")
    folded = _fold_toward_center(frames, side)
    deltas = np.diff(folded, axis=0)  # (T, n, 2)
    t_steps, n, _ = deltas.shape
    tol = 1e-9 * max(side, 1.0)

    dx = deltas[:, :, 0]
    dy = deltas[:, :, 1]
    horizontal_in = (dx > tol) & (np.abs(dy) <= tol)
    vertical_in = (dy > tol) & (np.abs(dx) <= tol)

    best = np.zeros(n, dtype=np.float64)
    run_h = np.zeros(n, dtype=np.float64)
    run_v = np.zeros(n, dtype=np.float64)
    for t in range(t_steps):
        h = horizontal_in[t]
        v = vertical_in[t]
        run_h = np.where(h, run_h + dx[t], 0.0)
        run_v = np.where(v, run_v + dy[t], 0.0)
        best = np.maximum(best, np.maximum(run_h, run_v))
    return best


def longest_inward_run(trajectory: np.ndarray, side: float) -> float:
    """Single-agent convenience wrapper over :func:`longest_inward_runs_from_frames`.

    Args:
        trajectory: positions of shape ``(T + 1, 2)``.
    """
    trajectory = np.asarray(trajectory, dtype=np.float64)
    if trajectory.ndim != 2 or trajectory.shape[1] != 2:
        raise ValueError(f"trajectory must have shape (T+1, 2), got {trajectory.shape}")
    return float(longest_inward_runs_from_frames(trajectory[:, None, :], side)[0])
