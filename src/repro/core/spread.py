"""Informed-cell dynamics — the engine of Theorem 10.

The Central-Zone analysis tracks the set ``Q_t`` of *informed cells* (cells
whose visiting agents are all informed).  Lemmas 8-9 give the recurrence

.. math:: |Q_{t+1}| \\ge |Q_t| + \\sqrt{\\min(|Q_t|, |CZ| - |Q_t|)}

and Claim 11 turns it into completion within ``5 sqrt(|CZ|)`` steps.  This
module measures ``Q_t`` on live flooding runs so the ``thm10_growth``
experiment can check the recurrence, and implements Claim 11's deterministic
iteration for comparison.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.cells import CellGrid
from repro.core.zones import ZonePartition

__all__ = ["InformedCellTracker", "claim11_completion_steps", "growth_deficits"]


class InformedCellTracker:
    """Track the informed-cell set ``Q_t`` over a flooding run.

    A Central-Zone cell is *informed at time t* when every agent currently
    located in it is informed (empty cells count as informed, matching the
    vacuous reading of "all agents visiting C are informed").

    Use as a simulation observer: it records ``|Q_t|`` per step.
    """

    def __init__(self, grid: CellGrid, zones: ZonePartition):
        self.grid = grid
        self.zones = zones
        self.history = []
        self._central_ids = zones.central_cell_ids()

    def informed_cell_count(self, positions: np.ndarray, informed: np.ndarray) -> int:
        """Number of informed Central-Zone cells in this snapshot."""
        flat = self.grid.flat_indices(positions)
        total = np.bincount(flat, minlength=self.grid.n_cells)
        informed_count = np.bincount(
            flat[informed], minlength=self.grid.n_cells
        )
        cell_informed = informed_count[self._central_ids] == total[self._central_ids]
        return int(np.count_nonzero(cell_informed))

    # Observer protocol -------------------------------------------------
    def start(self, positions: np.ndarray, protocol) -> None:
        self.history = [self.informed_cell_count(positions, protocol.informed)]

    def observe(self, t: int, positions: np.ndarray, protocol, newly) -> None:
        self.history.append(self.informed_cell_count(positions, protocol.informed))

    # Analysis ------------------------------------------------------------
    def q_series(self) -> np.ndarray:
        """``|Q_t|`` per step (including the initial snapshot)."""
        return np.asarray(self.history, dtype=np.intp)


def growth_deficits(q_series: np.ndarray, total_cells: int) -> np.ndarray:
    """Per-step slack in the Lemma-9 recurrence.

    Returns, for each step ``t`` with ``0 < |Q_t| < total``, the value
    ``|Q_{t+1}| - |Q_t| - sqrt(min(|Q_t|, total - |Q_t|))`` — non-negative
    entries mean the recurrence held at that step.  Steps where ``Q_t`` is
    empty or complete are skipped (the recurrence doesn't apply).
    """
    q = np.asarray(q_series, dtype=np.float64)
    if q.size < 2:
        return np.empty(0)
    current = q[:-1]
    nxt = q[1:]
    active = (current > 0) & (current < total_cells)
    required = np.sqrt(np.minimum(current, total_cells - current))
    deficits = nxt - current - required
    return deficits[active]


def claim11_completion_steps(total_cells: int) -> int:
    """Claim 11's deterministic completion horizon ``ceil(5 sqrt(q))``.

    Also validates the claim by iterating the recurrence worst case:
    ``q_{t+1} = q_t + ceil? sqrt(min(...))`` from ``q_0 = 1`` — the iteration
    reaches ``total_cells`` within the bound (asserted in the tests).
    """
    if total_cells < 1:
        raise ValueError(f"total_cells must be positive, got {total_cells}")
    return int(math.ceil(5.0 * math.sqrt(total_cells)))
