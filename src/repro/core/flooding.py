"""Flooding-experiment helpers: source placement and zone construction.

The heavy lifting lives in :mod:`repro.simulation.runner`; this module holds
the paper-specific pieces — where the source starts (Theorem 3 treats the
central and suburban cases separately) and the Central-Zone/Suburb partition
attached to a run.
"""

from __future__ import annotations

import numpy as np

from repro.core.cells import CellGrid
from repro.core.zones import ZonePartition
from repro.geometry.points import as_points

__all__ = ["select_source", "build_zone_partition"]


def select_source(positions, side: float, mode, rng: np.random.Generator) -> int:
    """Pick the source agent.

    Args:
        mode: ``"uniform"`` — uniformly random agent; ``"central"`` — the
            agent closest to the square's center (Theorem 3's first case);
            ``"suburb"`` — the agent closest to its nearest corner
            (Theorem 3's second case); or an explicit index.
    """
    positions = as_points(positions)
    n = positions.shape[0]
    if isinstance(mode, (int, np.integer)):
        idx = int(mode)
        if not 0 <= idx < n:
            raise ValueError(f"source index must be in [0, {n}), got {idx}")
        return idx
    if mode == "uniform":
        return int(rng.integers(0, n))
    if mode == "central":
        center = np.array([side / 2.0, side / 2.0])
        return int(np.argmin(np.sum((positions - center) ** 2, axis=1)))
    if mode == "suburb":
        x = np.minimum(positions[:, 0], side - positions[:, 0])
        y = np.minimum(positions[:, 1], side - positions[:, 1])
        return int(np.argmin(x + y))
    raise ValueError(f"unknown source mode {mode!r}")


def build_zone_partition(
    n: int, side: float, radius: float, threshold_factor: float = 3.0 / 8.0
) -> ZonePartition:
    """Zone partition for a parameter tuple, or None when no cell grid fits.

    Returns None (rather than raising) when ``radius`` is too large for
    Inequality 6's grid — the regime where the whole square is one dense
    zone and per-zone tracking is meaningless.
    """
    try:
        grid = CellGrid.for_radius(side, radius)
    except ValueError:
        return None
    return ZonePartition(grid, n, threshold_factor=threshold_factor)
