"""Parameter-regime classification — Sections 1 and 5 made computable.

The paper's discussion partitions the ``(R, v)`` plane (for given ``n``,
``L``) into regimes:

* ``trivial``        — ``R > sqrt2 L``: one hop covers the square;
* ``no-suburb``      — ``R`` above Corollary 12's threshold: flooding in
  ``18 L/R``, speed irrelevant;
* ``cz-dominated``   — Theorem 3's bound is ``Theta(L/R)`` (the optimal
  window ``v >= S R / L``);
* ``suburb-dominated`` — the ``S/v`` term dominates: flooding time depends
  on ``v`` (and for ``R = O(L/n^(1/3))``, Theorem 18's lower bound bites);
* ``below-assumption`` — ``R`` under the (calibrated) Inequality-7 radius:
  outside the theorem's hypotheses;
* ``fast-mobility``  — ``v`` above Inequality 8: outside the slow-mobility
  hypothesis.

:func:`classify_regime` labels a parameter point; :func:`regime_map`
rasterizes the plane for the ``regime_map`` experiment's ASCII figure.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import theory

__all__ = ["REGIMES", "classify_regime", "regime_map", "REGIME_SYMBOLS"]

REGIMES = (
    "trivial",
    "no-suburb",
    "cz-dominated",
    "suburb-dominated",
    "below-assumption",
    "fast-mobility",
)

#: One-character symbols for the ASCII regime map.
REGIME_SYMBOLS = {
    "trivial": "T",
    "no-suburb": "O",
    "cz-dominated": "C",
    "suburb-dominated": "S",
    "below-assumption": ".",
    "fast-mobility": "^",
}


def classify_regime(
    n: int,
    side: float,
    radius: float,
    speed: float,
    c1: float = math.sqrt(5.0),
    speed_divisor: float = theory.PAPER_SPEED_DIVISOR,
) -> str:
    """Label the regime of a parameter point.

    Args:
        c1: calibrated Inequality-7 constant (default: the measured
            ``sqrt 5`` of the ``lemma6_rows`` experiment; the paper's 200 is
            available via :data:`repro.core.theory.PAPER_C1`).
    """
    if radius <= 0 or speed < 0:
        raise ValueError("radius must be positive and speed non-negative")
    if radius > math.sqrt(2.0) * side:
        return "trivial"
    if radius >= theory.large_radius_threshold(n, side):
        return "no-suburb"
    if radius < theory.radius_assumption_threshold(n, side, c1=c1):
        return "below-assumption"
    if speed > theory.speed_assumption_max(radius, speed_divisor):
        return "fast-mobility"
    v_min, _v_max = theory.optimal_speed_range(n, side, radius)
    if speed >= v_min:
        return "cz-dominated"
    return "suburb-dominated"


def regime_map(
    n: int,
    side: float,
    radius_range: tuple,
    speed_fractions: tuple,
    resolution: int = 24,
    c1: float = math.sqrt(5.0),
) -> dict:
    """Rasterize the regime plane over log-spaced ``R`` and ``v/R`` axes.

    Args:
        radius_range: ``(R_min, R_max)``.
        speed_fractions: ``(f_min, f_max)`` range of ``v / R``.
        resolution: grid points per axis.

    Returns:
        dict with ``radii`` (ascending), ``fractions`` (ascending),
        ``labels`` (resolution x resolution array of regime names, indexed
        ``[radius_idx, fraction_idx]``) and ``ascii`` (rendered map, speed
        fraction increasing upward, radius increasing rightward).
    """
    if resolution < 2:
        raise ValueError(f"resolution must be at least 2, got {resolution}")
    radii = np.geomspace(radius_range[0], radius_range[1], resolution)
    fractions = np.geomspace(speed_fractions[0], speed_fractions[1], resolution)
    labels = np.empty((resolution, resolution), dtype=object)
    for i, radius in enumerate(radii):
        for j, fraction in enumerate(fractions):
            labels[i, j] = classify_regime(n, side, float(radius), float(fraction * radius), c1=c1)
    lines = []
    for j in range(resolution - 1, -1, -1):
        lines.append("".join(REGIME_SYMBOLS[labels[i, j]] for i in range(resolution)))
    legend = "  ".join(f"{symbol}={name}" for name, symbol in REGIME_SYMBOLS.items())
    return {
        "radii": radii,
        "fractions": fractions,
        "labels": labels,
        "ascii": "\n".join(lines) + "\n[" + legend + "]",
    }
