"""The cell partition of Section 4 (Inequality 6).

The square is partitioned into ``m x m`` cells of side ``l`` with

.. math:: \\frac{R}{1 + \\sqrt 5} \\le \\ell \\le \\frac{R}{\\sqrt 5}

so that an agent anywhere in a cell can transmit to an agent anywhere in
any of the four adjacent cells (the worst-case distance across adjacent
cells is ``sqrt(5) * l <= R``).  Each cell's *core* is its central
subsquare of side ``l / 3``; the slow-mobility assumption (Ineq. 8,
``v <= R / (3 (1 + sqrt 5)) = l_min / 3``) guarantees an agent in a core at
time ``t`` is still inside the same cell at ``t + 1``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.points import as_points
from repro.mobility.distributions import cell_mass

__all__ = ["CellGrid", "cell_side_bounds"]

_SQRT5 = math.sqrt(5.0)


def cell_side_bounds(radius: float) -> tuple:
    """The admissible cell-side interval ``[R/(1+sqrt5), R/sqrt5]`` of Ineq. 6."""
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    return (radius / (1.0 + _SQRT5), radius / _SQRT5)


class CellGrid:
    """An ``m x m`` cell partition of ``[0, side]^2``.

    Construct directly with an explicit ``m`` or via :meth:`for_radius`,
    which picks the smallest ``m`` satisfying Inequality 6.

    Args:
        side: square side ``L``.
        m: number of cells per side.

    Attributes:
        ell: cell side length ``l = L / m``.
    """

    def __init__(self, side: float, m: int):
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        self.side = float(side)
        self.m = int(m)
        self.ell = self.side / self.m

    @classmethod
    def for_radius(cls, side: float, radius: float) -> "CellGrid":
        """Build the grid whose cell side satisfies Inequality 6 for ``radius``.

        Picks ``m = ceil(sqrt5 * L / R)`` (the finest admissible grid) and
        verifies ``l >= R / (1 + sqrt5)``.

        Raises:
            ValueError: when no integer ``m`` satisfies the inequality — this
                happens only for ``R > L`` (fewer than ~2 cells), where the
                paper's bound is trivial anyway (see Section 4's
                ``R <= sqrt2 L`` remark).
        """
        lo, hi = cell_side_bounds(radius)
        m = int(math.ceil(side / hi))
        m = max(m, 1)
        ell = side / m
        if ell < lo - 1e-12 or ell > hi + 1e-12:
            raise ValueError(
                f"no integer cell count satisfies Ineq. 6 for side={side}, radius={radius} "
                f"(need cell side in [{lo:.4g}, {hi:.4g}], got {ell:.4g} with m={m}); "
                "radius is too large relative to the square"
            )
        return cls(side, m)

    @property
    def n_cells(self) -> int:
        """Total number of cells, ``m^2``."""
        return self.m * self.m

    # ------------------------------------------------------------------
    # Point <-> cell maps
    # ------------------------------------------------------------------
    def cell_indices(self, points) -> np.ndarray:
        """Integer cell coordinates ``(ix, iy)`` of each point, shape ``(n, 2)``.

        Points on the far boundary are assigned to the last cell.
        """
        points = as_points(points)
        # int truncation == floor for the non-negative coordinates of the
        # square (the clip below also repairs any negative numerical dust).
        ij = (points / self.ell).astype(np.intp)
        np.clip(ij, 0, self.m - 1, out=ij)
        return ij

    def flat_indices(self, points) -> np.ndarray:
        """Flattened cell id ``ix * m + iy`` of each point."""
        ij = self.cell_indices(points)
        return ij[:, 0] * self.m + ij[:, 1]

    def cell_sw_corner(self, ix, iy) -> np.ndarray:
        """South-west corner coordinates of cells ``(ix, iy)``."""
        ix = np.asarray(ix, dtype=np.float64)
        iy = np.asarray(iy, dtype=np.float64)
        return np.stack(np.broadcast_arrays(ix * self.ell, iy * self.ell), axis=-1)

    def cell_center(self, ix, iy) -> np.ndarray:
        """Center coordinates of cells ``(ix, iy)``."""
        return self.cell_sw_corner(ix, iy) + self.ell / 2.0

    def in_core(self, points) -> np.ndarray:
        """Mask of points lying in the *core* (central ``l/3`` subsquare) of
        their cell."""
        points = as_points(points)
        offset = np.mod(points, self.ell)
        lo = self.ell / 3.0
        hi = 2.0 * self.ell / 3.0
        return np.all((offset >= lo) & (offset <= hi), axis=1)

    # ------------------------------------------------------------------
    # Cell masses (Observation 5)
    # ------------------------------------------------------------------
    def all_cell_masses(self) -> np.ndarray:
        """Stationary probability mass of every cell, shape ``(m, m)``.

        ``masses[ix, iy]`` integrates Theorem 1's pdf over the cell via the
        closed form of Observation 5; the full array sums to 1.
        """
        idx = np.arange(self.m, dtype=np.float64) * self.ell
        x0 = idx[:, None]
        y0 = idx[None, :]
        return cell_mass(x0, y0, self.ell, self.side)

    def occupancy(self, points, core_only: bool = False) -> np.ndarray:
        """Agent counts per cell, shape ``(m, m)``.

        Args:
            core_only: count only agents inside cell cores (the quantity of
                the Lemma-7 density condition).
        """
        points = as_points(points)
        if core_only:
            points = points[self.in_core(points)]
        flat = self.flat_indices(points)
        counts = np.bincount(flat, minlength=self.n_cells)
        return counts.reshape(self.m, self.m)

    def adjacent_pairs(self) -> np.ndarray:
        """All 4-adjacent cell pairs as flat ids, shape ``(k, 2)``."""
        ids = np.arange(self.n_cells, dtype=np.intp).reshape(self.m, self.m)
        horizontal = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
        vertical = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
        return np.concatenate([horizontal, vertical], axis=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CellGrid(side={self.side}, m={self.m}, ell={self.ell:.4g})"
