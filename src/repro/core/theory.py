"""Every closed-form bound and assumption of the paper, as computable functions.

This is the analytical companion to the simulator: Theorem 3's upper bound,
Theorem 10 / Corollary 12's Central-Zone bound, Theorem 18's lower bound,
the parameter assumptions (Ineqs. 7-9), and the per-lemma quantities
(Lemma 13's turn bound, Lemma 14's segment bound, Lemma 15's ``S``,
Lemma 16's meeting window).  The experiment harness evaluates these next to
the measured flooding times.

Constants note (also in DESIGN.md): the paper states its constants are not
optimized ("definitely does not optimize the constants").  Functions take
the paper's constants as defaults and accept overrides, so experiments can
report both the paper-exact and the scaled-down versions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "PAPER_C1",
    "PAPER_SPEED_DIVISOR",
    "radius_assumption_threshold",
    "speed_assumption_max",
    "large_radius_threshold",
    "suburb_diameter",
    "cz_flooding_bound",
    "flooding_upper_bound",
    "flooding_lower_bound",
    "geometric_lower_bound",
    "turn_count_bound",
    "good_segment_bound",
    "meeting_window",
    "optimal_speed_range",
    "Assumptions",
    "check_assumptions",
]

#: Inequality 7's constant: ``R >= 200 L sqrt(log n / n)``.
PAPER_C1 = 200.0
#: Inequality 8's divisor: ``v <= R / (3 (1 + sqrt 5))``.
PAPER_SPEED_DIVISOR = 3.0 * (1.0 + math.sqrt(5.0))


def radius_assumption_threshold(n: int, side: float, c1: float = PAPER_C1) -> float:
    """Minimum radius of Inequality 7: ``c1 * L * sqrt(log n / n)``."""
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    return c1 * side * math.sqrt(math.log(n) / n)


def speed_assumption_max(radius: float, divisor: float = PAPER_SPEED_DIVISOR) -> float:
    """Maximum speed of Inequality 8: ``R / (3 (1 + sqrt5))`` by default.

    This is the slow-mobility regime: an agent in a cell core at time ``t``
    cannot leave the cell by time ``t + 1``.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    return radius / divisor


def large_radius_threshold(n: int, side: float) -> float:
    """Corollary 12's radius: ``(1+sqrt5)/2 * L * (3 log n / n)^(1/3)``.

    Above this radius every cell is in the Central Zone (the Suburb is
    empty) and flooding completes within ``18 L / R`` steps w.h.p.
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    return (1.0 + math.sqrt(5.0)) / 2.0 * side * (3.0 * math.log(n) / n) ** (1.0 / 3.0)


def suburb_diameter(n: int, side: float, radius: float) -> float:
    """The ``S = Theta(L^3 log n / (R^2 n))`` of the abstract, with the
    paper's cell-side convention.

    Uses the finest admissible cell side ``l = R / sqrt5`` (Ineq. 6), giving
    ``S = 3 L^3 log n / (2 l^2 n) = 15 L^3 log n / (2 R^2 n)``.
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    ell = radius / math.sqrt(5.0)
    return 3.0 * side**3 * math.log(n) / (2.0 * ell * ell * n)


def cz_flooding_bound(side: float, radius: float) -> float:
    """Theorem 10's explicit Central-Zone flooding bound: ``18 L / R``."""
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    return 18.0 * side / radius


def flooding_upper_bound(
    n: int,
    side: float,
    radius: float,
    speed: float,
    cz_constant: float = 18.0,
    suburb_constant: float = 594.0,
) -> float:
    """Theorem 3's upper bound ``O(L/R + S/v)`` with explicit constants.

    The default suburb constant traces the proof: the meeting window is
    ``tau = 590 S/v`` (Lemma 16), plus the ``S/v`` entry delay and the
    ``3 S/v`` return-to-CZ allowance — about ``594 S/v`` in total.

    Returns ``math.inf`` for ``speed == 0`` when the Suburb term is active
    (flooding need not terminate with immobile suburban agents).
    """
    cz_term = cz_constant * side / radius
    s = suburb_diameter(n, side, radius)
    if speed <= 0:
        return math.inf if s > 0 else cz_term
    return cz_term + suburb_constant * s / speed


def flooding_lower_bound(
    n: int, side: float, radius: float, speed: float, d_constant: float = 1.0
) -> float:
    """Theorem 18's lower bound ``(2d - R) / (2v)`` with ``d = c L / n^(1/3)``.

    Valid when ``R <= d`` (the theorem's ``R = O(L / n^{1/3})`` hypothesis);
    returns 0.0 otherwise.  ``math.inf`` when ``speed == 0`` and the bound is
    active.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    d = d_constant * side / n ** (1.0 / 3.0)
    if radius > d:
        return 0.0
    if speed <= 0:
        return math.inf
    return (2.0 * d - radius) / (2.0 * speed)


def geometric_lower_bound(distance: float, radius: float, speed: float) -> float:
    """Trivial information-speed bound: ``distance / (R + 2 v)`` steps.

    Per step, the informed set's reach grows by at most one hop (``R``)
    plus the movement of both endpoints (``2 v``).
    """
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    if radius + 2.0 * speed <= 0:
        return math.inf if distance > 0 else 0.0
    return distance / (radius + 2.0 * speed)


def turn_count_bound(n: int, side: float, speed: float, tau: float) -> float:
    """Lemma 13's w.h.p. bound on turns in a window: ``4 log n / log(L / (v tau))``.

    Valid for ``L/(n v) <= tau <= L/(4 v)``.

    Raises:
        ValueError: when ``tau`` is outside the lemma's validity range.
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    if speed <= 0 or tau <= 0:
        raise ValueError("speed and tau must be positive")
    lo = side / (n * speed)
    hi = side / (4.0 * speed)
    if not lo <= tau <= hi * (1 + 1e-12):
        raise ValueError(f"tau={tau} outside Lemma 13's range [{lo:.4g}, {hi:.4g}]")
    return 4.0 * math.log(n) / math.log(side / (speed * tau))


def good_segment_bound(n: int, side: float, speed: float, tau: float) -> float:
    """Lemma 14's guaranteed inward-segment length:
    ``v tau log(L/(v tau)) / (40 log n)``."""
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    if speed <= 0 or tau <= 0:
        raise ValueError("speed and tau must be positive")
    return speed * tau * math.log(side / (speed * tau)) / (40.0 * math.log(n))


def meeting_window(n: int, side: float, radius: float, speed: float) -> float:
    """Lemma 16's meeting window ``tau = 590 S / v``."""
    if speed <= 0:
        return math.inf
    return 590.0 * suburb_diameter(n, side, radius) / speed


def optimal_speed_range(n: int, side: float, radius: float) -> tuple:
    """Speed interval on which Theorem 3's bound is order-optimal.

    The bound is ``Theta(L/R)`` — matching the trivial lower bound — exactly
    when the Suburb term is dominated: ``v >= S R / L``.  Combined with the
    slow-mobility assumption ``v <= R``, the optimal window is
    ``[S R / L, R]`` (for ``L = sqrt n``, ``R = Theta(log n)``, this is the
    paper's "v larger than an absolute constant" remark).

    Returns:
        ``(v_min, v_max)``; empty (``v_min > v_max``) when the window closes.
    """
    s = suburb_diameter(n, side, radius)
    return (s * radius / side, radius)


@dataclass(frozen=True)
class Assumptions:
    """Result of checking a parameter tuple against the paper's hypotheses."""

    radius_ok: bool
    speed_ok: bool
    radius_not_trivial: bool
    suburb_nonempty: bool

    @property
    def all_ok(self) -> bool:
        """Whether Theorem 3's hypotheses hold (Suburb may or may not be empty)."""
        return self.radius_ok and self.speed_ok and self.radius_not_trivial


def check_assumptions(
    n: int,
    side: float,
    radius: float,
    speed: float,
    c1: float = PAPER_C1,
    speed_divisor: float = PAPER_SPEED_DIVISOR,
) -> Assumptions:
    """Check Inequalities 7-9 for a parameter tuple.

    Args:
        c1: the radius constant (paper: 200); experiments use smaller,
            explicitly-reported values.
        speed_divisor: the slow-mobility divisor (paper: ``3 (1 + sqrt5)``).
    """
    return Assumptions(
        radius_ok=radius >= radius_assumption_threshold(n, side, c1),
        speed_ok=speed <= speed_assumption_max(radius, speed_divisor),
        radius_not_trivial=radius <= math.sqrt(2.0) * side,
        suburb_nonempty=radius <= large_radius_threshold(n, side),
    )
