"""Central Zone and Suburb (Definition 4) and their geometry (Lemmas 6, 15).

A cell belongs to the **Central Zone** when its stationary probability mass
is at least ``(3/8) log n / n``; the complement cells form the **Suburb**
(four staircase-shaped corner regions, see Fig. 1).  The **Extended Suburb**
(Lemma 16) adds every point within Manhattan distance ``2 S`` of the Suburb,
where ``S = 3 L^3 log n / (2 l^2 n)`` bounds each corner region's diameter
(Lemma 15).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.cells import CellGrid
from repro.geometry.points import as_points, manhattan_distance_to_box

__all__ = ["ZonePartition", "density_threshold", "suburb_diameter_bound"]

#: Definition 4's threshold constant.
DEFAULT_THRESHOLD_FACTOR = 3.0 / 8.0


def density_threshold(n: int, factor: float = DEFAULT_THRESHOLD_FACTOR) -> float:
    """Definition 4's cell-mass threshold ``factor * log n / n``."""
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    return factor * math.log(n) / n


def suburb_diameter_bound(n: int, side: float, ell: float) -> float:
    """Lemma 15's bound ``S = 3 L^3 log n / (2 l^2 n)`` on a Suburb corner's extent.

    Every point ``(x0, y0)`` of the south-west Suburb corner satisfies
    ``x0 <= S`` and ``y0 <= S`` (and symmetrically for the other corners).
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    if side <= 0 or ell <= 0:
        raise ValueError("side and ell must be positive")
    return 3.0 * side**3 * math.log(n) / (2.0 * ell * ell * n)


class ZonePartition:
    """Partition of a :class:`CellGrid` into Central Zone and Suburb cells.

    Args:
        grid: the cell partition.
        n: number of agents (enters through Definition 4's threshold).
        threshold_factor: the ``3/8`` of Definition 4; the experiments lower
            it in explicitly-labelled runs where the paper's un-optimized
            constant would empty the Central Zone at laptop scale.
    """

    def __init__(self, grid: CellGrid, n: int, threshold_factor: float = DEFAULT_THRESHOLD_FACTOR):
        self.grid = grid
        self.n = int(n)
        self.threshold_factor = float(threshold_factor)
        self.threshold = density_threshold(self.n, self.threshold_factor)
        self.cz_mask = grid.all_cell_masses() >= self.threshold
        # Suburb extent bound (Lemma 15).
        self.suburb_bound = suburb_diameter_bound(self.n, grid.side, grid.ell)

    # ------------------------------------------------------------------
    # Cell-level structure
    # ------------------------------------------------------------------
    @property
    def suburb_mask(self) -> np.ndarray:
        """Boolean ``(m, m)`` mask of Suburb cells."""
        return ~self.cz_mask

    @property
    def n_central_cells(self) -> int:
        return int(np.count_nonzero(self.cz_mask))

    @property
    def n_suburb_cells(self) -> int:
        return int(np.count_nonzero(self.suburb_mask))

    def central_zone_is_everything(self) -> bool:
        """True when the Suburb is empty (the large-R regime of Cor. 12)."""
        return bool(np.all(self.cz_mask))

    def count_full_rows_cols(self) -> tuple:
        """Number of cell rows / columns consisting entirely of CZ cells.

        Lemma 6 guarantees at least ``m / sqrt2`` of each.
        """
        full_cols = int(np.count_nonzero(np.all(self.cz_mask, axis=1)))  # fixed ix
        full_rows = int(np.count_nonzero(np.all(self.cz_mask, axis=0)))  # fixed iy
        return full_rows, full_cols

    def lemma6_bound(self) -> float:
        """The ``m / sqrt2`` lower bound of Lemma 6."""
        return self.grid.m / math.sqrt(2.0)

    # ------------------------------------------------------------------
    # Point classification
    # ------------------------------------------------------------------
    def in_central_zone(self, points) -> np.ndarray:
        """Mask of points lying in Central-Zone cells."""
        ij = self.grid.cell_indices(points)
        return self.cz_mask[ij[:, 0], ij[:, 1]]

    def in_suburb(self, points) -> np.ndarray:
        """Mask of points lying in Suburb cells."""
        return ~self.in_central_zone(points)

    def suburb_corner_extent(self) -> float:
        """Maximal coordinate extent of the SW Suburb corner (empirical
        counterpart of Lemma 15's ``S``).

        Returns the largest ``x + l`` (== largest ``y + l`` by symmetry)
        over SW-quadrant Suburb cells, i.e. how far the corner region
        reaches into the square; 0.0 when the Suburb is empty.
        """
        suburb = self.suburb_mask
        if not np.any(suburb):
            return 0.0
        half = self.grid.m / 2.0
        ix, iy = np.nonzero(suburb)
        sw = (ix < half) & (iy < half)
        if not np.any(sw):
            return 0.0
        reach_x = (ix[sw] + 1) * self.grid.ell
        reach_y = (iy[sw] + 1) * self.grid.ell
        return float(max(reach_x.max(), reach_y.max()))

    def _suburb_cell_boxes(self) -> np.ndarray:
        """Bounding boxes ``(x_lo, y_lo, x_hi, y_hi)`` of all Suburb cells."""
        ix, iy = np.nonzero(self.suburb_mask)
        ell = self.grid.ell
        return np.stack([ix * ell, iy * ell, (ix + 1) * ell, (iy + 1) * ell], axis=1)

    def in_extended_suburb(self, points, margin: float = None) -> np.ndarray:
        """Mask of points within Manhattan distance ``margin`` of the Suburb.

        Args:
            margin: defaults to ``2 S`` per Lemma 16's definition.
        """
        points = as_points(points)
        if margin is None:
            margin = 2.0 * self.suburb_bound
        boxes = self._suburb_cell_boxes()
        if boxes.shape[0] == 0:
            return np.zeros(points.shape[0], dtype=bool)
        result = np.zeros(points.shape[0], dtype=bool)
        pending = np.arange(points.shape[0])
        for x_lo, y_lo, x_hi, y_hi in boxes:
            if pending.size == 0:
                break
            dist = manhattan_distance_to_box(points[pending], x_lo, y_lo, x_hi, y_hi)
            hit = dist <= margin
            result[pending[hit]] = True
            pending = pending[~hit]
        return result

    def central_cell_ids(self) -> np.ndarray:
        """Flat ids of Central-Zone cells."""
        return np.nonzero(self.cz_mask.ravel())[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ZonePartition(m={self.grid.m}, central={self.n_central_cells}, "
            f"suburb={self.n_suburb_cells}, threshold={self.threshold:.3g})"
        )
