"""The paper's core machinery: cells, zones, bounds, turn/meeting analyses."""

from repro.core import theory
from repro.core.cells import CellGrid, cell_side_bounds
from repro.core.density import DensityCondition, core_occupancy_of_central_cells
from repro.core.flooding import build_zone_partition, select_source
from repro.core.meetings import first_meeting_times_from_zone, meeting_radius
from repro.core.regimes import REGIMES, classify_regime, regime_map
from repro.core.spread import (
    InformedCellTracker,
    claim11_completion_steps,
    growth_deficits,
)
from repro.core.turns import (
    count_turns_in_window,
    longest_inward_run,
    longest_inward_runs_from_frames,
    max_turns_in_window,
)
from repro.core.zones import ZonePartition, density_threshold, suburb_diameter_bound

__all__ = [
    "theory",
    "CellGrid",
    "cell_side_bounds",
    "ZonePartition",
    "density_threshold",
    "suburb_diameter_bound",
    "DensityCondition",
    "core_occupancy_of_central_cells",
    "select_source",
    "build_zone_partition",
    "meeting_radius",
    "first_meeting_times_from_zone",
    "count_turns_in_window",
    "max_turns_in_window",
    "longest_inward_run",
    "longest_inward_runs_from_frames",
    "REGIMES",
    "classify_regime",
    "regime_map",
    "InformedCellTracker",
    "claim11_completion_steps",
    "growth_deficits",
]
