"""Meetings between Suburb agents and Central-Zone emissaries (Lemma 16).

Two agents *meet* when their distance is at most ``(3/4) R``; the slow-
mobility assumption then guarantees the message transfers within the next
time unit.  Lemma 16 says: w.h.p., an agent sitting in the Extended Suburb
is met, within ``tau = 590 S / v`` steps, by an agent that was in the
Central Zone at the window's start (and that returns to the Central Zone
soon after) — the mechanism by which information enters and leaves the
sparse corners.

This module measures first-meeting times of chosen agents against the
population that started in the Central Zone.
"""

from __future__ import annotations

import numpy as np

from repro.core.zones import ZonePartition
from repro.geometry.neighbors import make_engine
from repro.mobility.base import MobilityModel
from repro.network.contacts import MEETING_RADIUS_FACTOR

__all__ = ["meeting_radius", "first_meeting_times_from_zone"]


def meeting_radius(radius: float) -> float:
    """The paper's meeting distance ``(3/4) R``."""
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return MEETING_RADIUS_FACTOR * radius


def first_meeting_times_from_zone(
    model: MobilityModel,
    zones: ZonePartition,
    radius: float,
    targets: np.ndarray,
    window: int,
    backend: str = "auto",
    dt: float = 1.0,
) -> np.ndarray:
    """First time each target agent meets an agent that started in the CZ.

    The *emissary set* is frozen at the call time: every agent located in a
    Central-Zone cell at step 0 of the window (matching Lemma 16's "b was in
    the Central Zone at time t - S/v").  The model is advanced ``window``
    steps in place.

    Args:
        model: mobility model (all agents).
        zones: zone partition used to classify emissaries.
        radius: transmission radius ``R``; the meeting test uses ``(3/4) R``.
        targets: indices of the agents whose meeting times are measured
            (typically agents currently in the Suburb).
        window: number of steps to observe.

    Returns:
        float array over ``targets``: the first step (1-based) at which the
        target was within ``(3/4) R`` of an emissary; ``numpy.inf`` if the
        window ends first.  A meeting at step 0 (before any movement) is
        also detected and reported as 0.
    """
    targets = np.asarray(targets, dtype=np.intp)
    if window < 0:
        raise ValueError(f"window must be non-negative, got {window}")
    positions = model.positions
    emissaries = np.nonzero(zones.in_central_zone(positions))[0]
    # Targets that are themselves emissaries trivially meet at time 0;
    # exclude self-meetings by masking them out of the source set per query.
    engine = make_engine(backend, model.side)
    meet_r = meeting_radius(radius)

    times = np.full(targets.size, np.inf)
    emissary_mask = np.zeros(model.n, dtype=bool)
    emissary_mask[emissaries] = True

    def _update(step: int, pos: np.ndarray, pending: np.ndarray) -> np.ndarray:
        if pending.size == 0 or emissaries.size == 0:
            return pending
        target_ids = targets[pending]
        counts = engine.count_within(pos[emissaries], pos[target_ids], meet_r)
        # A target that is itself an emissary always counts itself (distance
        # 0), so it needs a second emissary in range for a genuine meeting.
        needed = np.where(emissary_mask[target_ids], 2, 1)
        hits = counts >= needed
        met = pending[hits]
        times[met] = step
        return pending[~hits]

    pending = np.arange(targets.size)
    pending = _update(0, positions, pending)
    for step in range(1, window + 1):
        if pending.size == 0:
            break
        pos = model.step(dt)
        pending = _update(step, pos, pending)
    return times
