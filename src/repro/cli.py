"""Command-line interface: ``repro-manhattan`` (or ``python -m repro.cli``).

Subcommands:

* ``list`` — show all registered experiments;
* ``experiment <id> [--scale quick|full] [--seed N] [--csv PATH]
  [--engine scalar|batch|auto] [--jobs N] [--adaptive] [--ci-width W]
  [--min-trials N] [--max-trials N] [--checkpoint DIR] [--resume [DIR]]``
  (alias: ``run``) — run one experiment and print its report;
  ``--engine``/``--jobs`` thread through to the sweep-scheduler
  experiments (engine choice never changes results, only speed);
  ``--adaptive`` switches those experiments to sequential stopping (stop
  sampling a point once its CI is narrow enough — a bit-exact prefix of
  the fixed-budget tables), and ``--checkpoint``/``--resume`` persist and
  continue partial sweeps bit-exactly;
* ``all [--scale ...] [--seed N] [--engine ...] [--jobs N] [--adaptive ...]``
  — run the whole suite (engine/jobs/adaptive apply to the experiments
  that support them);
* ``sweep --n N --parameter NAME --values V1 V2 ... [--trials T]
  [--adaptive ...] [--checkpoint DIR] [--resume [DIR]] [--workers N]
  [--lease-ttl SECONDS] [--max-retries N] [--csv PATH]`` —
  ad-hoc one-parameter sweeps over the canonical ``L = sqrt n``
  configuration through the sweep scheduler, with the same adaptive and
  checkpoint/resume controls; ``repro sweep --resume DIR`` continues a
  killed or budget-capped sweep exactly where it stopped;
  ``--workers N`` self-spawns a lease-coordinated cooperative fleet on
  the shared checkpoint, and ``--lease-ttl`` joins independent
  invocations (one per host or terminal) to the same plan — a SIGKILLed
  worker costs one TTL, not the run, and the final tables stay identical
  to a solo run (``experiment``/``run`` take the same three flags);
* ``flood --n N [--trials T] [--engine scalar|batch|auto] [--batch-size B]
  [--mobility NAME] [--mobility-options JSON] [--radius-factor C]
  [--speed-fraction F] ...`` — ad-hoc flooding runs with the canonical
  ``L = sqrt n`` scaling; ``--engine batch`` advances all trials in
  lock-step through the vectorized batch engine (same results, faster) —
  every registered mobility model is batch-native, transit family
  included; ``--mobility-options`` passes model options (e.g.
  ``'{"riders": 1990, "dwell": 2.0}'`` for ``--mobility timetable``);
  ``--kernels compiled|numpy|auto`` selects the compiled kernel tier for
  the hot loops (bit-exact by contract — tier changes speed, never
  results; ``sweep`` takes the same flag);
* ``bench [--smoke] [--suite core|protocols|experiments|mobility|network|kernels|all]
  [--out PATH] [--repeats N] [--label TAG]`` — the perf-trajectory harness
  (:mod:`repro.bench`): kernel and end-to-end timings, the per-protocol
  batch-vs-scalar suite, the sweep-scheduler experiments suite
  (quick-scale batch-vs-scalar per migrated experiment, table-parity
  gated), the compiled-kernel-tier suite (per-kernel compiled vs numpy
  micro-benchmarks plus the canonical end-to-end run, fingerprint-parity
  gated, warm-path-only measurement asserted), and cross-strategy parity
  checks, written as machine-readable JSON so future PRs can regress
  against it.  Exit status reflects **parity only**, never timing.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from repro.experiments.registry import all_ids, get_spec, run_experiment
from repro.mobility import MODEL_REGISTRY
from repro.simulation.config import standard_config
from repro.simulation.results import summarize
from repro.simulation.runner import run_flooding, run_trials
from repro.simulation.sweep import SweepPlan, StoppingRule, run_sweep
from repro.viz.csvout import write_csv

__all__ = ["main", "build_parser"]


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return number


def _json_object(value: str) -> dict:
    try:
        parsed = json.loads(value)
    except json.JSONDecodeError as exc:
        raise argparse.ArgumentTypeError(f"invalid JSON: {exc}") from None
    if not isinstance(parsed, dict):
        raise argparse.ArgumentTypeError(
            f"must be a JSON object, got {type(parsed).__name__}"
        )
    return parsed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-manhattan",
        description="Fast Flooding over Manhattan (PODC 2010) — reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    def add_engine_jobs(p, scope: str):
        p.add_argument(
            "--engine",
            choices=("scalar", "batch", "auto"),
            default=None,
            help=f"execution-engine override for {scope} (sweep-scheduler "
            "experiments only; results are engine-independent, only speed changes)",
        )
        p.add_argument(
            "--jobs",
            type=_positive_int,
            default=1,
            help="worker processes for the sweep scheduler (default 1: in-process)",
        )

    def add_adaptive(p):
        p.add_argument(
            "--adaptive",
            action="store_true",
            help="sequential stopping: stop sampling a sweep point once its "
            "CI half-width is below --ci-width (results are a bit-exact "
            "prefix of the fixed-budget run)",
        )
        p.add_argument(
            "--ci-width",
            type=float,
            default=None,
            metavar="W",
            help="relative CI half-width target for --adaptive (default 0.1); "
            "implies --adaptive",
        )
        p.add_argument(
            "--min-trials",
            type=_positive_int,
            default=None,
            metavar="N",
            help="trials always run before adaptive stopping may fire "
            "(default min(2, fixed budget)); implies --adaptive",
        )
        p.add_argument(
            "--max-trials",
            type=_positive_int,
            default=None,
            metavar="N",
            help="adaptive trial cap per point (default: the point's fixed "
            "budget); implies --adaptive",
        )

    def add_kernels(p):
        p.add_argument(
            "--kernels",
            choices=("auto", "compiled", "numpy"),
            default="auto",
            help="compiled kernel tier for hot loops: 'numpy' (reference "
            "vectorized paths), 'compiled' (numba/cext provider, bit-exact "
            "by contract, error if no provider is available), or 'auto' "
            "(compiled when a provider exists, else numpy; the default)",
        )

    def add_checkpoint(p):
        p.add_argument(
            "--checkpoint",
            default=None,
            metavar="DIR",
            help="persist partial sweep results to DIR (atomic, after every "
            "trial batch) so a killed run can be continued with --resume",
        )
        p.add_argument(
            "--resume",
            nargs="?",
            const=True,
            default=False,
            metavar="DIR",
            help="continue the checkpoint in DIR (or in --checkpoint) "
            "bit-exactly from where the previous run stopped",
        )
        p.add_argument(
            "--workers",
            type=_positive_int,
            default=1,
            metavar="N",
            help="cooperative worker processes to self-spawn against the "
            "shared --checkpoint (lease-coordinated; a crashed worker costs "
            "one lease TTL, not the run; tables identical to a solo run)",
        )
        p.add_argument(
            "--lease-ttl",
            type=float,
            default=None,
            metavar="SECONDS",
            help="cooperative lease time-to-live: join the workers already "
            "draining --checkpoint (independent invocations on one "
            "directory share the plan; stale leases are reclaimed after "
            "SECONDS without a heartbeat)",
        )
        p.add_argument(
            "--max-retries",
            type=int,
            default=None,
            metavar="N",
            help="per-job crash retries (deterministic backoff) before a "
            "repeatedly-crashing job is quarantined as a poison job",
        )

    run_p = sub.add_parser("experiment", aliases=["run"], help="run one experiment")
    run_p.add_argument("experiment", choices=all_ids())
    run_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--csv", help="also write the result table to this CSV path")
    add_engine_jobs(run_p, "the experiment")
    add_adaptive(run_p)
    add_checkpoint(run_p)

    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    all_p.add_argument("--seed", type=int, default=0)
    add_engine_jobs(all_p, "every supporting experiment")
    add_adaptive(all_p)

    sweep_p = sub.add_parser(
        "sweep", help="ad-hoc one-parameter sweep through the sweep scheduler"
    )
    sweep_p.add_argument("--n", type=_positive_int, required=True)
    sweep_p.add_argument(
        "--parameter",
        required=True,
        help="FloodingConfig field to sweep (e.g. radius, speed, max_steps)",
    )
    sweep_p.add_argument(
        "--values",
        nargs="+",
        required=True,
        help="values to sweep over (parsed as int, then float, else string)",
    )
    sweep_p.add_argument("--trials", type=_positive_int, default=5)
    sweep_p.add_argument("--radius-factor", type=float, default=2.0)
    sweep_p.add_argument("--speed-fraction", type=float, default=0.25)
    sweep_p.add_argument("--max-steps", type=int, default=20_000)
    sweep_p.add_argument("--seed", type=int, default=0)
    add_kernels(sweep_p)
    sweep_p.add_argument(
        "--trial-budget",
        type=_positive_int,
        default=None,
        metavar="N",
        help="global trial ceiling across the sweep; minimum counts are "
        "always funded, the rest flows to the neediest unfinished points",
    )
    sweep_p.add_argument("--csv", help="also write the sweep table to this CSV path")
    add_engine_jobs(sweep_p, "the sweep")
    add_adaptive(sweep_p)
    add_checkpoint(sweep_p)

    flood_p = sub.add_parser("flood", help="ad-hoc flooding runs (L = sqrt n)")
    flood_p.add_argument("--n", type=int, required=True)
    flood_p.add_argument("--radius-factor", type=float, default=2.0)
    flood_p.add_argument("--speed-fraction", type=float, default=0.25)
    flood_p.add_argument("--source", default="uniform")
    flood_p.add_argument("--seed", type=int, default=0)
    flood_p.add_argument("--max-steps", type=int, default=20_000)
    flood_p.add_argument(
        "--trials",
        type=_positive_int,
        default=1,
        help="independent trials to run (default 1)",
    )
    flood_p.add_argument(
        "--engine",
        choices=("scalar", "batch", "auto"),
        default="scalar",
        help="trial execution engine: 'scalar' (reference, one trial at a time), "
        "'batch' (vectorized lock-step over all trials; same results for every "
        "registered protocol and mobility model), or 'auto' (batch when both "
        "the protocol and the mobility model have native batch implementations)",
    )
    flood_p.add_argument(
        "--protocol",
        default="flooding",
        help="broadcast protocol (any PROTOCOL_REGISTRY name; both engines "
        "support all of them)",
    )
    flood_p.add_argument(
        "--mobility",
        choices=sorted(MODEL_REGISTRY),
        default="mrwp",
        help="mobility model (any MODEL_REGISTRY name; every registered "
        "model runs natively vectorized under the batch engine, the "
        "transit family ferry/composite/timetable included)",
    )
    flood_p.add_argument(
        "--mobility-options",
        type=_json_object,
        default=None,
        metavar="JSON",
        help="mobility model options as a JSON object, e.g. "
        "'{\"riders\": 1990, \"dwell\": 2.0, \"capacity\": 8}' for "
        "--mobility timetable or '{\"ferries\": 5}' for --mobility "
        "composite (validated against the model's option vocabulary at "
        "config time)",
    )
    flood_p.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="trials per batch with --engine batch (0 = all in one batch)",
    )
    add_kernels(flood_p)

    bench_p = sub.add_parser(
        "bench", help="run the perf-trajectory benchmark suite (repro.bench)"
    )
    bench_p.add_argument(
        "--smoke",
        action="store_true",
        help="small scales for CI smoke runs (machinery + parity, not timing)",
    )
    bench_p.add_argument(
        "--suite",
        choices=("core", "protocols", "experiments", "mobility", "network", "kernels", "all"),
        default="all",
        help="benchmark suite: 'core' (kernels + flooding end-to-end), "
        "'protocols' (every registered protocol, batch vs scalar, "
        "parity-gated), 'experiments' (the sweep-scheduler experiment "
        "suite at quick scale, batch vs scalar, table-parity gated), "
        "'mobility' (per-mobility-model batch vs scalar, parity-gated), "
        "'network' (temporal-graph analytics: incremental connectivity "
        "profiles, exact MST thresholds, batched journeys and contact "
        "recording vs their scalar baselines, parity-gated), 'kernels' "
        "(compiled tier vs numpy: per-kernel micro-benchmarks plus the "
        "canonical end-to-end run, fingerprint-parity gated), or 'all'",
    )
    bench_p.add_argument(
        "--out",
        default="BENCH_RUN.json",
        help="output JSON path (default BENCH_RUN.json; the committed "
        "trajectory anchors BENCH_PR2.json / BENCH_PR3.json are only "
        "written when asked for explicitly)",
    )
    bench_p.add_argument(
        "--repeats",
        type=_positive_int,
        default=None,
        help="best-of-N timing repeats (default 3, smoke 2)",
    )
    bench_p.add_argument("--label", default="PR10", help="free-form tag stored in the report")
    bench_p.add_argument(
        "--baseline",
        action="append",
        default=[],
        metavar="NAME=SECONDS",
        help="recorded external baseline (e.g. pr1_batch=0.357, timed from "
        "that PR's checkout on this host); repeatable",
    )

    report_p = sub.add_parser(
        "report", help="run experiments and write a markdown reproduction report"
    )
    # Default kept distinct from the curated EXPERIMENTS.md documentation.
    report_p.add_argument("--out", default="EXPERIMENTS_RUN.md")
    report_p.add_argument("--scale", choices=("quick", "full"), default="quick")
    report_p.add_argument("--seed", type=int, default=0)
    report_p.add_argument(
        "--only", nargs="*", default=None, help="subset of experiment ids"
    )
    add_engine_jobs(report_p, "every supporting experiment")
    return parser


def _cmd_list() -> int:
    for experiment_id in all_ids():
        spec = get_spec(experiment_id)
        print(f"{experiment_id:20s} {spec.paper_ref:40s} {spec.description}")
    return 0


def _stopping_from_args(args) -> StoppingRule | None:
    """Build the stopping rule requested by --adaptive and friends."""
    requested = args.adaptive or any(
        value is not None for value in (args.ci_width, args.min_trials, args.max_trials)
    )
    if not requested:
        return None
    kwargs = {}
    if args.ci_width is not None:
        kwargs["ci_width"] = args.ci_width
    if args.min_trials is not None:
        kwargs["min_trials"] = args.min_trials
    if args.max_trials is not None:
        kwargs["max_trials"] = args.max_trials
    try:
        return StoppingRule(**kwargs)
    except ValueError as error:
        raise SystemExit(str(error))


def _checkpoint_from_args(args) -> tuple:
    """``(checkpoint_dir, resume)`` from --checkpoint / --resume [DIR]."""
    checkpoint = args.checkpoint
    resume = args.resume is not False
    if isinstance(args.resume, str):
        if checkpoint is not None and checkpoint != args.resume:
            raise SystemExit(
                f"--resume {args.resume!r} conflicts with --checkpoint "
                f"{checkpoint!r}; pass the directory once"
            )
        checkpoint = args.resume
    if resume and checkpoint is None:
        raise SystemExit("--resume needs a checkpoint directory (--resume DIR)")
    return checkpoint, resume


def _cmd_run(args) -> int:
    from repro.simulation.parallel import PoisonJobError

    checkpoint, resume = _checkpoint_from_args(args)
    try:
        result = run_experiment(
            args.experiment, scale=args.scale, seed=args.seed,
            engine=args.engine, jobs=args.jobs,
            stopping=_stopping_from_args(args),
            checkpoint=checkpoint, resume=resume,
            workers=args.workers, lease_ttl=args.lease_ttl,
            max_retries=args.max_retries,
        )
    except PoisonJobError as error:
        raise SystemExit(f"poison job quarantined: {error}")
    except ValueError as error:
        # e.g. --engine on a closed-form experiment with no scheduler path.
        raise SystemExit(str(error))
    print(result.to_text())
    if args.csv:
        write_csv(args.csv, result.headers, result.rows)
        print(f"[table written to {args.csv}]")
    return 0 if result.passed in (True, None) else 1


def _cmd_all(args) -> int:
    stopping = _stopping_from_args(args)
    failures = 0
    for experiment_id in all_ids():
        spec = get_spec(experiment_id)
        try:
            result = spec.run(
                scale=args.scale,
                seed=args.seed,
                engine=args.engine if spec.accepts_engine else None,
                jobs=args.jobs if spec.accepts_jobs else 1,
                stopping=stopping if spec.accepts_stopping else None,
            )
        except ValueError as error:
            # e.g. --engine batch on an observer-point experiment that can
            # only run scalar: report it and keep the suite going.
            print(f"== {experiment_id}: SKIPPED ({error}) ==")
            print()
            failures += 1
            continue
        print(result.to_text())
        print()
        if result.passed is False:
            failures += 1
    print(f"[{len(all_ids()) - failures}/{len(all_ids())} experiments passed their shape checks]")
    return 0 if failures == 0 else 1


def _cmd_flood(args) -> int:
    source = args.source
    if source not in ("uniform", "central", "suburb"):
        source = int(source)
    config = standard_config(
        args.n,
        radius_factor=args.radius_factor,
        speed_fraction=args.speed_fraction,
        source=source,
        seed=args.seed,
        max_steps=args.max_steps,
        protocol=args.protocol,
        mobility=args.mobility,
        mobility_options=args.mobility_options or {},
        engine=args.engine,
        batch_size=args.batch_size,
        kernels=args.kernels,
    )
    print(config.describe())
    if args.trials > 1 or config.resolved_engine == "batch":
        results = run_trials(config, args.trials)
        summary = summarize(r.flooding_time for r in results)
        completed = sum(r.completed for r in results)
        print(f"engine: {config.resolved_engine} ({args.trials} trials)")
        print(f"flooding time: {summary.format('steps')}")
        print(f"completed: {completed}/{args.trials}")
        print(f"Theorem 3 bound: {config.upper_bound():.1f}")
        return 0 if completed == args.trials else 1
    result = run_flooding(config)
    print(f"flooding time: {result.flooding_time}")
    print(f"completed: {result.completed} (coverage {result.final_coverage:.3f})")
    if result.cz_completion_time is not None:
        print(f"CZ completion: {result.cz_completion_time}")
        print(f"Suburb completion: {result.suburb_completion_time}")
    print(f"Theorem 3 bound: {config.upper_bound():.1f}")
    return 0 if result.completed else 1


def _parse_sweep_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _cmd_sweep(args) -> int:
    checkpoint, resume = _checkpoint_from_args(args)
    config = standard_config(
        args.n,
        radius_factor=args.radius_factor,
        speed_fraction=args.speed_fraction,
        seed=args.seed,
        max_steps=args.max_steps,
        kernels=args.kernels,
    )
    values = [_parse_sweep_value(v) for v in args.values]
    try:
        plan = SweepPlan.over_parameter(config, args.parameter, values, n_trials=args.trials)
    except TypeError as error:
        raise SystemExit(f"cannot sweep {args.parameter!r}: {error}")
    from repro.simulation.checkpoint import CheckpointError
    from repro.simulation.parallel import PoisonJobError
    from repro.viz.tables import format_table

    try:
        points = run_sweep(
            plan,
            engine=args.engine or "auto",
            jobs=args.jobs,
            stopping=_stopping_from_args(args),
            checkpoint=checkpoint,
            resume=resume,
            trial_budget=args.trial_budget,
            workers=args.workers,
            lease_ttl=args.lease_ttl,
            max_retries=args.max_retries,
        )
    except PoisonJobError as error:
        raise SystemExit(f"poison job quarantined: {error}")
    except (CheckpointError, ValueError) as error:
        raise SystemExit(str(error))
    headers = [args.parameter, "mean T_flood", "min", "max", "completed", "engine"]
    rows = []
    for point in points:
        mean = point.masked_mean()
        rows.append(
            [
                point.key,
                round(mean, 1) if math.isfinite(mean) else "masked",
                round(point.summary.minimum, 1),
                round(point.summary.maximum, 1),
                point.completion_label,
                point.engine,
            ]
        )
    print(format_table(headers, rows))
    total = sum(p.n_trials for p in points)
    budget = sum(p.n_trials for p in plan)
    if total != budget:
        print(f"[adaptive stopping: {total} trials vs {budget} fixed budget]")
    if checkpoint:
        print(f"[checkpoint in {checkpoint}; continue with --resume {checkpoint}]")
    if args.csv:
        write_csv(args.csv, headers, rows)
        print(f"[table written to {args.csv}]")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import render_table, run_benchmarks, write_report

    baselines = {}
    for spec in args.baseline:
        name, _, seconds = spec.partition("=")
        try:
            baselines[name] = float(seconds)
        except ValueError:
            raise SystemExit(f"--baseline expects NAME=SECONDS, got {spec!r}")
    report = run_benchmarks(
        smoke=args.smoke,
        repeats=args.repeats,
        label=args.label,
        baselines=baselines,
        suite=args.suite,
    )
    write_report(args.out, report)
    print(render_table(report))
    print(f"[report written to {args.out}]")
    return 0 if report["parity"]["ok"] else 1


def _cmd_report(args) -> int:
    from repro.viz.report import write_report

    path = write_report(
        args.out, scale=args.scale, seed=args.seed, experiment_ids=args.only,
        engine=args.engine, jobs=args.jobs,
    )
    print(f"[report written to {path}]")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command in ("experiment", "run"):
        return _cmd_run(args)
    if args.command == "all":
        return _cmd_all(args)
    if args.command == "flood":
        return _cmd_flood(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "report":
        return _cmd_report(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
