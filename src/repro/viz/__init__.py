"""Terminal visualization: ASCII heatmaps, tables, CSV export."""

from repro.viz.animation import record_flooding_frames, render_agents_frame
from repro.viz.ascii import render_heatmap, render_sparkline, render_zone_map
from repro.viz.csvout import rows_to_csv_string, write_csv
from repro.viz.report import generate_report, write_report
from repro.viz.tables import format_markdown_table, format_table

__all__ = [
    "render_heatmap",
    "render_zone_map",
    "render_sparkline",
    "render_agents_frame",
    "record_flooding_frames",
    "format_table",
    "format_markdown_table",
    "write_csv",
    "rows_to_csv_string",
    "generate_report",
    "write_report",
]
