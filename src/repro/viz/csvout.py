"""CSV export of experiment tables and series."""

from __future__ import annotations

import csv
import os

__all__ = ["write_csv", "rows_to_csv_string"]


def write_csv(path: str, headers, rows) -> str:
    """Write a table to ``path`` (creating parent directories); returns the path."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return path


def rows_to_csv_string(headers, rows) -> str:
    """Render a table as a CSV string (used by the CLI's ``--csv`` flag)."""
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()
