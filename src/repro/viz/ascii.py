"""ASCII rendering of densities and zone maps.

Figure 1 of the paper is a grayscale density gradient; without a plotting
dependency we render the same information as character shades in the
terminal.  ``y`` grows upward (row 0 of the output is the top of the
square), matching the paper's figure orientation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_heatmap", "render_zone_map", "render_sparkline"]

#: Shade ramp from empty to dense.
_SHADES = " .:-=+*#%@"


def render_heatmap(values: np.ndarray, width: int = None, legend: bool = True) -> str:
    """Render a 2-D array as an ASCII shade map.

    Args:
        values: ``(nx, ny)`` array; index ``[i, j]`` is column ``i`` (x),
            row ``j`` (y).
        width: optional downsample target for the x dimension.
        legend: append a min/max legend line.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"values must be 2-D, got shape {values.shape}")
    if width is not None and width < values.shape[0]:
        factor = int(np.ceil(values.shape[0] / width))
        nx = values.shape[0] // factor
        ny = values.shape[1] // factor
        values = values[: nx * factor, : ny * factor]
        values = values.reshape(nx, factor, ny, factor).mean(axis=(1, 3))
    lo = float(values.min())
    hi = float(values.max())
    span = hi - lo if hi > lo else 1.0
    scaled = ((values - lo) / span * (len(_SHADES) - 1)).astype(int)
    lines = []
    for j in range(values.shape[1] - 1, -1, -1):  # top row first
        # Double each character horizontally: terminal cells are ~2x taller
        # than wide, so doubling keeps the square visually square.
        lines.append("".join(_SHADES[scaled[i, j]] * 2 for i in range(values.shape[0])))
    if legend:
        lines.append(f"[min={lo:.4g} max={hi:.4g}; shades '{_SHADES}']")
    return "\n".join(lines)


def render_zone_map(cz_mask: np.ndarray, legend: bool = True) -> str:
    """Render a Central-Zone mask: ``#`` CZ cells, ``.`` Suburb cells."""
    cz_mask = np.asarray(cz_mask, dtype=bool)
    if cz_mask.ndim != 2:
        raise ValueError(f"cz_mask must be 2-D, got shape {cz_mask.shape}")
    lines = []
    for j in range(cz_mask.shape[1] - 1, -1, -1):
        lines.append("".join(("##" if cz_mask[i, j] else "..") for i in range(cz_mask.shape[0])))
    if legend:
        lines.append("[## = Central Zone, .. = Suburb]")
    return "\n".join(lines)


def render_sparkline(values, width: int = 60) -> str:
    """One-line sparkline of a series (coverage curves in experiment logs)."""
    ramp = "▁▂▃▄▅▆▇█"
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return ""
    if values.size > width:
        # Downsample by averaging consecutive chunks.
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array([values[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a])
    lo = values.min()
    hi = values.max()
    span = hi - lo if hi > lo else 1.0
    idx = ((values - lo) / span * (len(ramp) - 1)).astype(int)
    return "".join(ramp[i] for i in idx)
