"""ASCII animation of a flooding run.

Renders snapshots of the informed/uninformed agent population as character
frames — the moving-picture version of Fig. 1's density plot, showing the
wave crossing the Central Zone and the stragglers in the corners.  Used by
the ``flooding_frames`` example and handy in notebooks/terminals.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_agents_frame", "record_flooding_frames"]


def render_agents_frame(
    positions: np.ndarray,
    informed: np.ndarray,
    side: float,
    width: int = 40,
    legend: bool = True,
) -> str:
    """One frame: ``#`` cells contain informed agents, ``o`` only uninformed.

    Cells holding both kinds render as ``#`` (the informed dominate
    visually, matching how the flooding wavefront reads).  Empty cells are
    blank.  ``y`` grows upward.
    """
    positions = np.asarray(positions, dtype=np.float64)
    informed = np.asarray(informed, dtype=bool)
    if informed.shape != (positions.shape[0],):
        raise ValueError("informed mask must match positions")
    if width < 2:
        raise ValueError(f"width must be at least 2, got {width}")
    cell = side / width
    ij = np.floor(positions / cell).astype(int)
    np.clip(ij, 0, width - 1, out=ij)
    has_informed = np.zeros((width, width), dtype=bool)
    has_uninformed = np.zeros((width, width), dtype=bool)
    has_informed[ij[informed, 0], ij[informed, 1]] = True
    has_uninformed[ij[~informed, 0], ij[~informed, 1]] = True
    lines = []
    for j in range(width - 1, -1, -1):
        row = []
        for i in range(width):
            if has_informed[i, j]:
                row.append("#")
            elif has_uninformed[i, j]:
                row.append("o")
            else:
                row.append(" ")
        lines.append("".join(row))
    if legend:
        count = int(np.count_nonzero(informed))
        lines.append(f"[# informed ({count}/{positions.shape[0]}), o uninformed]")
    return "\n".join(lines)


def record_flooding_frames(
    model,
    protocol,
    at_steps,
    width: int = 40,
) -> dict:
    """Run a flooding simulation capturing frames at chosen steps.

    Args:
        model: mobility model.
        protocol: broadcast protocol sized for the model.
        at_steps: iterable of step indices to capture (0 = initial state).
        width: frame resolution.

    Returns:
        dict step -> rendered frame.  The simulation stops after the largest
        requested step or on completion, whichever is later -- frames after
        completion show the fully informed population.
    """
    wanted = sorted(set(int(s) for s in at_steps))
    if wanted and wanted[0] < 0:
        raise ValueError("step indices must be non-negative")
    frames = {}
    positions = model.positions
    if wanted and wanted[0] == 0:
        frames[0] = render_agents_frame(positions, protocol.informed, model.side, width)
        wanted = wanted[1:]
    last = wanted[-1] if wanted else 0
    for step in range(1, last + 1):
        positions = model.step()
        protocol.step(positions)
        if wanted and step == wanted[0]:
            frames[step] = render_agents_frame(
                positions, protocol.informed, model.side, width
            )
            wanted = wanted[1:]
    return frames
