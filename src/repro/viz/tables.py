"""Fixed-width and markdown table rendering for experiment reports."""

from __future__ import annotations

__all__ = ["format_table", "format_markdown_table"]


def _stringify(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if cell in (float("inf"), float("-inf")):
            return "inf" if cell > 0 else "-inf"
        if cell == 0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_table(headers, rows, title: str = None) -> str:
    """Render rows as an aligned fixed-width text table.

    Args:
        headers: column names.
        rows: iterable of row iterables (cells are stringified; floats get
            compact formatting).
        title: optional title line above the table.
    """
    headers = [str(h) for h in headers]
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers, rows) -> str:
    """Render rows as a GitHub-flavored markdown table."""
    headers = [str(h) for h in headers]
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
