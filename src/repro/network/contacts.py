"""Contact traces: who met whom, when, and for how long.

The Suburb analysis (Lemma 16 / Claim 17) is about *meetings*: two agents
meet at time ``t`` when their distance is at most ``(3/4) R``.  This module
records per-step contact pairs from a snapshot series and derives meeting
statistics — first-meeting times, contact durations, and inter-contact
gaps — the raw material of the ``meeting_suburb`` experiment and of the
delay-tolerant-routing example.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.geometry.neighbors import BatchNeighborQuery, make_engine
from repro.network.snapshots import SnapshotSeries

__all__ = ["ContactTrace", "record_contacts", "batch_record_contacts"]

#: The paper's meeting radius is 3/4 of the transmission radius (Section 4).
MEETING_RADIUS_FACTOR = 0.75


@dataclass
class ContactTrace:
    """Contact events extracted from a snapshot series.

    Attributes:
        n: number of agents.
        n_steps: number of recorded steps.
        step_pairs: list (length ``n_steps + 1``) of ``(k, 2)`` arrays — the
            agent pairs in contact at each time step.
    """

    n: int
    n_steps: int
    step_pairs: list = field(default_factory=list)

    def contacts_at(self, t: int) -> np.ndarray:
        """Contact pairs at step ``t``."""
        return self.step_pairs[t]

    def contact_counts(self) -> np.ndarray:
        """Number of contact pairs per step, shape ``(n_steps + 1,)``."""
        return np.array([pairs.shape[0] for pairs in self.step_pairs], dtype=np.intp)

    def first_meeting_times(self, agents) -> dict:
        """First time each given agent is in contact with *anyone*.

        Returns:
            dict agent -> first contact step (``math.inf``-free: missing
            agents simply aren't in the dict).
        """
        agents = set(int(a) for a in agents)
        out = {}
        for t, pairs in enumerate(self.step_pairs):
            if not agents:
                break
            if pairs.size == 0:
                continue
            present = set(np.unique(pairs).tolist()) & agents
            for a in present:
                out[a] = t
            agents -= present
        return out

    def pair_contact_steps(self) -> dict:
        """Map ``(i, j) -> sorted list of steps`` at which the pair was in contact."""
        out = defaultdict(list)
        for t, pairs in enumerate(self.step_pairs):
            for i, j in pairs.tolist():
                out[(i, j)].append(t)
        return dict(out)

    def inter_contact_times(self) -> np.ndarray:
        """All inter-contact gaps (steps between consecutive contacts of a pair).

        Opportunistic-networking workloads (paper refs [15, 16, 26]) are
        characterized by this distribution.
        """
        gaps = []
        for steps in self.pair_contact_steps().values():
            arr = np.asarray(steps)
            diffs = np.diff(arr)
            gaps.extend(diffs[diffs > 1].tolist())
        return np.asarray(gaps, dtype=np.float64)

    def contact_durations(self) -> np.ndarray:
        """Lengths of maximal runs of consecutive contact steps, over all pairs."""
        durations = []
        for steps in self.pair_contact_steps().values():
            arr = np.asarray(steps)
            if arr.size == 0:
                continue
            breaks = np.nonzero(np.diff(arr) > 1)[0]
            run_starts = np.concatenate([[0], breaks + 1])
            run_ends = np.concatenate([breaks, [arr.size - 1]])
            durations.extend((run_ends - run_starts + 1).tolist())
        return np.asarray(durations, dtype=np.float64)


def _canonical_pairs(pairs: np.ndarray) -> np.ndarray:
    """Sort a ``(k, 2)`` pair array lexicographically by ``(i, j)``.

    Backends emit pairs in traversal order; the canonical order makes
    scalar and batched recordings byte-identical and the raw
    ``contacts_at`` arrays stable across backends.
    """
    if pairs.shape[0] <= 1:
        return pairs
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[order]


def record_contacts(
    series: SnapshotSeries,
    radius: Optional[float] = None,
    backend: str = "auto",
) -> ContactTrace:
    """Extract the contact trace of a snapshot series.

    Each frame is bound into the engine's snapshot API, so persistent
    backends (the incremental grid) splice per-step displacements across
    frames instead of re-sorting every one; per-step pairs are stored in
    canonical ``(i, j)`` order.

    Args:
        series: recorded mobility snapshots.
        radius: contact radius; defaults to the paper's meeting radius
            ``(3/4) R`` with ``R = series.radius``.
        backend: neighbor-engine backend.
    """
    if radius is None:
        radius = MEETING_RADIUS_FACTOR * series.radius
    engine = make_engine(backend, series.side)
    trace = ContactTrace(n=series.n, n_steps=series.n_steps)
    for t in range(series.n_steps + 1):
        pairs = engine.bind(series.positions_at(t), radius).pairs_within()
        trace.step_pairs.append(_canonical_pairs(pairs))
    return trace


def batch_record_contacts(
    frames: np.ndarray,
    radius: float,
    side: float,
    backend: str = "auto",
) -> list:
    """Contact traces of ``B`` replica trajectories, one engine call per step.

    The per-replica contact export workload: a ``(B, T + 1, n, 2)`` frame
    tensor (e.g. recorded straight from the batch mobility engine) is swept
    frame-by-frame through one
    :class:`~repro.geometry.neighbors.BatchNeighborQuery`, whose tiling
    makes cross-replica contacts geometrically impossible — every
    replica's pairs fall out of a single tiled enumeration per step.

    Args:
        frames: ``(B, T + 1, n, 2)`` position frames, replica-major.
        radius: contact radius (pass the paper's meeting radius
            ``MEETING_RADIUS_FACTOR * R`` to match :func:`record_contacts`
            defaults).
        side: region side length.
        backend: batch-query backend name.

    Returns:
        list of ``B`` :class:`ContactTrace` objects, byte-identical to
        recording each replica's series with :func:`record_contacts`.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim != 4 or frames.shape[3] != 2:
        raise ValueError(f"frames must have shape (B, T+1, n, 2), got {frames.shape}")
    batch_size, n_frames, n, _ = frames.shape
    query = BatchNeighborQuery(side, batch_size, backend=backend)
    traces = [ContactTrace(n=n, n_steps=n_frames - 1) for _ in range(batch_size)]
    for t in range(n_frames):
        rep, i, j = query.bind(np.ascontiguousarray(frames[:, t])).pairs_within(radius)
        pairs = np.stack([i, j], axis=1) if rep.size else np.empty((0, 2), dtype=np.intp)
        # Replica-major lexicographic sort: one pass splits into canonical
        # per-replica blocks.
        order = np.lexsort((j, i, rep))
        rep, pairs = rep[order], pairs[order]
        bounds = np.searchsorted(rep, np.arange(batch_size + 1))
        for b in range(batch_size):
            traces[b].step_pairs.append(pairs[bounds[b]:bounds[b + 1]])
    return traces
