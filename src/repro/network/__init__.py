"""Network substrate: disk graphs, connectivity, evolving-graph reachability."""

from repro.network.connectivity import (
    connectivity_profile,
    estimate_connectivity_threshold,
    uniform_connectivity_threshold,
    zone_connectivity,
)
from repro.network.contacts import MEETING_RADIUS_FACTOR, ContactTrace, record_contacts
from repro.network.disk_graph import DiskGraph
from repro.network.evolving import journey_times, reachability_fraction, temporal_bfs
from repro.network.journeys import (
    delay_statistics,
    delivery_delay_matrix,
    temporal_diameter,
    temporal_eccentricities,
)
from repro.network.graph_stats import (
    component_summary,
    degree_histogram,
    degree_summary,
    zone_degree_split,
)
from repro.network.snapshots import SnapshotSeries, take_snapshots
from repro.network.union_find import UnionFind, components_from_edges

__all__ = [
    "DiskGraph",
    "UnionFind",
    "components_from_edges",
    "SnapshotSeries",
    "take_snapshots",
    "temporal_bfs",
    "journey_times",
    "reachability_fraction",
    "delivery_delay_matrix",
    "temporal_eccentricities",
    "temporal_diameter",
    "delay_statistics",
    "ContactTrace",
    "record_contacts",
    "MEETING_RADIUS_FACTOR",
    "uniform_connectivity_threshold",
    "estimate_connectivity_threshold",
    "connectivity_profile",
    "zone_connectivity",
    "degree_summary",
    "degree_histogram",
    "component_summary",
    "zone_degree_split",
]
