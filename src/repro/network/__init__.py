"""Network substrate: disk graphs, connectivity, evolving-graph reachability."""

from repro.network.batch_union_find import (
    BatchUnionFind,
    batch_components_from_edges,
    batch_mst_bottleneck,
    mst_bottleneck,
)
from repro.network.connectivity import (
    batch_connectivity_profile,
    batch_connectivity_threshold,
    connectivity_profile,
    estimate_connectivity_threshold,
    uniform_connectivity_threshold,
    zone_connectivity,
)
from repro.network.contacts import (
    MEETING_RADIUS_FACTOR,
    ContactTrace,
    batch_record_contacts,
    record_contacts,
)
from repro.network.disk_graph import DiskGraph
from repro.network.evolving import (
    batch_temporal_bfs,
    journey_times,
    reachability_fraction,
    temporal_bfs,
)
from repro.network.journeys import (
    delay_statistics,
    delivery_delay_matrix,
    temporal_diameter,
    temporal_eccentricities,
)
from repro.network.graph_stats import (
    component_summary,
    degree_histogram,
    degree_summary,
    zone_degree_split,
)
from repro.network.snapshots import SnapshotSeries, take_snapshots
from repro.network.union_find import UnionFind, components_from_edges

__all__ = [
    "DiskGraph",
    "UnionFind",
    "BatchUnionFind",
    "components_from_edges",
    "batch_components_from_edges",
    "mst_bottleneck",
    "batch_mst_bottleneck",
    "SnapshotSeries",
    "take_snapshots",
    "temporal_bfs",
    "batch_temporal_bfs",
    "journey_times",
    "reachability_fraction",
    "delivery_delay_matrix",
    "temporal_eccentricities",
    "temporal_diameter",
    "delay_statistics",
    "ContactTrace",
    "record_contacts",
    "batch_record_contacts",
    "MEETING_RADIUS_FACTOR",
    "uniform_connectivity_threshold",
    "estimate_connectivity_threshold",
    "batch_connectivity_threshold",
    "connectivity_profile",
    "batch_connectivity_profile",
    "zone_connectivity",
    "degree_summary",
    "degree_histogram",
    "component_summary",
    "zone_degree_split",
]
