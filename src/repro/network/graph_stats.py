"""Descriptive statistics of snapshot disk graphs."""

from __future__ import annotations

import numpy as np

from repro.network.disk_graph import DiskGraph

__all__ = [
    "degree_summary",
    "degree_histogram",
    "component_summary",
    "zone_degree_split",
]


def degree_summary(graph: DiskGraph) -> dict:
    """Mean/min/max degree and isolated-vertex fraction of a snapshot."""
    deg = graph.degrees()
    n = max(1, graph.n)
    return {
        "mean_degree": float(deg.mean()) if deg.size else 0.0,
        "min_degree": int(deg.min()) if deg.size else 0,
        "max_degree": int(deg.max()) if deg.size else 0,
        "isolated_fraction": float(np.count_nonzero(deg == 0)) / n,
    }


def degree_histogram(graph: DiskGraph) -> np.ndarray:
    """``hist[k]`` = number of vertices with degree ``k``."""
    deg = graph.degrees()
    if deg.size == 0:
        return np.zeros(1, dtype=np.intp)
    return np.bincount(deg)


def component_summary(graph: DiskGraph) -> dict:
    """Component count, giant fraction, and size quantiles of a snapshot."""
    sizes = graph.component_sizes()
    return {
        "n_components": int(sizes.size),
        "giant_fraction": graph.giant_component_fraction(),
        "largest": int(sizes[0]) if sizes.size else 0,
        "median_size": float(np.median(sizes)) if sizes.size else 0.0,
    }


def zone_degree_split(graph: DiskGraph, zone_mask: np.ndarray) -> dict:
    """Mean degree inside vs. outside a zone (Central Zone vs. Suburb).

    The paper's "high density" notion (Definition 4 discussion) says disks
    of radius R in the Central Zone hold ``Omega(R^2)`` agents on average;
    this statistic makes the contrast with the Suburb measurable.
    """
    zone_mask = np.asarray(zone_mask, dtype=bool)
    if zone_mask.shape != (graph.n,):
        raise ValueError(f"zone_mask must have shape ({graph.n},), got {zone_mask.shape}")
    deg = graph.degrees()
    inside = deg[zone_mask]
    outside = deg[~zone_mask]
    return {
        "zone_mean_degree": float(inside.mean()) if inside.size else 0.0,
        "outside_mean_degree": float(outside.mean()) if outside.size else 0.0,
        "zone_isolated_fraction": (
            float(np.count_nonzero(inside == 0)) / inside.size if inside.size else 0.0
        ),
        "outside_isolated_fraction": (
            float(np.count_nonzero(outside == 0)) / outside.size if outside.size else 0.0
        ),
    }
