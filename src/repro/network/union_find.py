"""Disjoint-set (union-find) structure.

Connectivity of a snapshot disk graph ``G_t`` is the paper's central
structural notion (Central Zone connected vs. Suburb highly disconnected),
and we compute components thousands of times across parameter sweeps, so
the structure is implemented directly (path halving + union by size) with a
bulk edge-ingestion helper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UnionFind", "components_from_edges"]


class UnionFind:
    """Union-find over ``n`` elements with path halving and union by size."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._parent = np.arange(n, dtype=np.intp)
        self._size = np.ones(n, dtype=np.intp)
        self.n_components = n

    def __len__(self) -> int:
        return int(self._parent.shape[0])

    def find(self, x: int) -> int:
        """Representative of ``x``'s component (with path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``; True if they were distinct."""
        ra = self.find(a)
        rb = self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self.n_components -= 1
        return True

    def add_edges(self, edges: np.ndarray) -> None:
        """Union every pair in an ``(m, 2)`` integer edge array."""
        edges = np.asarray(edges)
        if edges.size == 0:
            return
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
        for a, b in edges:
            self.union(int(a), int(b))

    def component_size(self, x: int) -> int:
        """Size of the component containing ``x``."""
        return int(self._size[self.find(x)])

    def labels(self) -> np.ndarray:
        """Canonical component label (root index) for every element."""
        out = np.empty(len(self), dtype=np.intp)
        for i in range(len(self)):
            out[i] = self.find(i)
        return out

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same component."""
        return self.find(a) == self.find(b)


def components_from_edges(n: int, edges: np.ndarray) -> np.ndarray:
    """Component labels (0..k-1, by first occurrence) of an edge-list graph.

    Args:
        n: number of vertices.
        edges: integer array of shape ``(m, 2)``.

    Returns:
        ``(n,)`` integer labels; vertices in the same component share a label.
    """
    uf = UnionFind(n)
    uf.add_edges(edges)
    roots = uf.labels()
    _uniq, labels = np.unique(roots, return_inverse=True)
    return labels
