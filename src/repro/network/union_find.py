"""Disjoint-set (union-find) structure.

Connectivity of a snapshot disk graph ``G_t`` is the paper's central
structural notion (Central Zone connected vs. Suburb highly disconnected),
and we compute components thousands of times across parameter sweeps, so
the structure is implemented directly (path halving + union by size) with a
bulk edge-ingestion helper.

**Determinism**: the *partition* produced by any sequence of unions is
independent of union order (components are a property of the edge set);
only the internal choice of root representative depends on it.  Everything
downstream therefore consumes either canonicalized labels
(:func:`components_from_edges`, which routes through the vectorized
min-hooking core of :mod:`repro.network.batch_union_find` and labels each
component by its minimum vertex id) or order-insensitive aggregates
(component counts and sizes).
"""

from __future__ import annotations

import numpy as np

from repro.network.batch_union_find import BatchUnionFind

__all__ = ["UnionFind", "components_from_edges"]


class UnionFind:
    """Union-find over ``n`` elements with path halving and union by size."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._parent = np.arange(n, dtype=np.intp)
        self._size = np.ones(n, dtype=np.intp)
        self.n_components = n

    def __len__(self) -> int:
        return int(self._parent.shape[0])

    def find(self, x: int) -> int:
        """Representative of ``x``'s component (with path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``; True if they were distinct."""
        ra = self.find(a)
        rb = self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self.n_components -= 1
        return True

    def add_edges(self, edges: np.ndarray) -> None:
        """Union every pair in an ``(m, 2)`` integer edge array."""
        edges = np.asarray(edges)
        if edges.size == 0:
            return
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
        for a, b in edges:
            self.union(int(a), int(b))

    def component_size(self, x: int) -> int:
        """Size of the component containing ``x``."""
        return int(self._size[self.find(x)])

    def labels(self) -> np.ndarray:
        """Canonical component label (root index) for every element.

        Vectorized final path compression: instead of a per-element
        ``find`` walk, the whole parent array is pointer-doubled
        (``parent = parent[parent]``) to a fixpoint — ``O(log n)`` full
        gathers.  The compressed array is kept, so later ``find`` calls
        are O(1) and repeated ``labels()`` reads cost one gather.
        """
        parent = self._parent
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
        self._parent = parent
        return parent.copy()

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same component."""
        return self.find(a) == self.find(b)


def components_from_edges(n: int, edges: np.ndarray) -> np.ndarray:
    """Component labels (0..k-1, by first occurrence) of an edge-list graph.

    Runs through the vectorized min-hooking core
    (:class:`~repro.network.batch_union_find.BatchUnionFind`), so the labels
    are canonical — component ``0`` contains vertex ``0``, and labels
    appear in first-occurrence order along the vertex scan — independent
    of edge order.

    Args:
        n: number of vertices.
        edges: integer array of shape ``(m, 2)``.

    Returns:
        ``(n,)`` integer labels; vertices in the same component share a label.
    """
    edges = np.asarray(edges)
    if edges.size == 0:
        return np.arange(n, dtype=np.intp)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
    uf = BatchUnionFind(1, n)
    uf.add_edges(edges[:, 0], edges[:, 1], replica=np.zeros(edges.shape[0], dtype=np.intp))
    return uf.dense_labels()[0]
