"""Unicast journey metrics over evolving MANETs.

Flooding time is the *eccentricity* of the source in journey time; this
module generalizes to the quantities delay-tolerant networking cares about
(paper refs [16, 26, 29]): pairwise delivery delays, temporal eccentricity
per source, and the "temporal diameter" (max over sources of flooding
time) — all computed by replaying a recorded snapshot series through the
one-hop-per-step reachability of :mod:`repro.network.evolving`.  Every
multi-source sweep runs through :func:`~repro.network.evolving.journey_times`,
whose default engine answers all sources with one batched query per step.
"""

from __future__ import annotations

import numpy as np

from repro.network.evolving import journey_times
from repro.network.snapshots import SnapshotSeries

__all__ = [
    "delivery_delay_matrix",
    "temporal_eccentricities",
    "temporal_diameter",
    "delay_statistics",
]


def delivery_delay_matrix(
    series: SnapshotSeries, sources, multi_hop: bool = False, engine: str = "auto"
) -> np.ndarray:
    """Delivery delays from each source to every agent.

    Args:
        series: recorded snapshots.
        sources: iterable of source indices.
        engine: temporal-BFS engine (see
            :func:`~repro.network.evolving.journey_times`).

    Returns:
        float array of shape ``(len(sources), n)``; ``inf`` marks pairs not
        reached within the recorded horizon.
    """
    return journey_times(series, sources, multi_hop=multi_hop, engine=engine)


def temporal_eccentricities(
    series: SnapshotSeries, sources=None, multi_hop: bool = False, engine: str = "auto"
) -> np.ndarray:
    """Flooding time from each source (== temporal eccentricity).

    Args:
        sources: defaults to all agents (n temporal-BFS sweeps — use a
            sample for large n).
    """
    if sources is None:
        sources = range(series.n)
    matrix = delivery_delay_matrix(series, sources, multi_hop=multi_hop, engine=engine)
    return matrix.max(axis=1)


def temporal_diameter(
    series: SnapshotSeries, sources=None, multi_hop: bool = False, engine: str = "auto"
) -> float:
    """Max journey time over (sampled) source/destination pairs.

    The paper: flooding time "has the same role of the diameter in static
    networks" — this is that diameter, measured.
    """
    ecc = temporal_eccentricities(series, sources, multi_hop=multi_hop, engine=engine)
    return float(ecc.max())


def delay_statistics(
    series: SnapshotSeries,
    n_pairs: int,
    rng: np.random.Generator,
    multi_hop: bool = False,
    engine: str = "auto",
) -> dict:
    """Delivery-delay distribution over random source/destination pairs.

    The distinct sampled sources are swept in one batched journey pass
    (replacing the per-source memo dict the scalar loop kept).

    Returns:
        dict with ``delays`` (finite delays observed), ``delivered_fraction``
        (pairs reached within the horizon), ``mean``, ``median``, ``p95``.
    """
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be positive, got {n_pairs}")
    sources = rng.integers(0, series.n, size=n_pairs)
    destinations = rng.integers(0, series.n, size=n_pairs)
    unique_sources, source_row = np.unique(sources, return_inverse=True)
    matrix = journey_times(series, unique_sources, multi_hop=multi_hop, engine=engine)
    delays = matrix[source_row, destinations]
    finite = delays[np.isfinite(delays)]
    return {
        "delays": finite,
        "delivered_fraction": float(finite.size) / n_pairs,
        "mean": float(finite.mean()) if finite.size else float("inf"),
        "median": float(np.median(finite)) if finite.size else float("inf"),
        "p95": float(np.quantile(finite, 0.95)) if finite.size else float("inf"),
    }
