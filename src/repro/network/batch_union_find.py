"""Vectorized union-find over batched per-replica edge sets.

The connectivity analyses (giant-component profiles, threshold estimation,
zone comparisons) reduce to connected components of disk-graph snapshots —
computed thousands of times across radius grids and replica batches.  The
scalar :class:`~repro.network.union_find.UnionFind` unions edge-by-edge in
Python; this module replaces that inner loop with the component-hooking +
pointer-doubling scheme of the congested-clique MSF/connectivity literature
(PAPERS.md), vectorized over a ``(B, n)`` label tensor:

* **min-hooking** — every edge whose endpoints carry different labels hooks
  the larger label onto the smallest label seen across its component's
  incident edges (``np.minimum.at``), so label values only ever decrease;
* **pointer doubling** — ``parent = parent[parent]`` to a fixpoint
  compresses the hook chains, restoring the fully-compressed invariant in
  ``O(log n)`` gathers.

Labels are **canonical**: after every :meth:`BatchUnionFind.add_edges` call
each vertex's label is the minimum vertex id of its component, independent
of edge order or batching.  That determinism is what makes incremental
radius sweeps possible — replaying a length-sorted edge list prefix by
prefix yields byte-identical component structure to rebuilding from
scratch at every radius.

All replicas live in one flat ``(B * n,)`` array with replica ``b``
occupying the id range ``[b * n, (b + 1) * n)``; edges never cross replica
ranges, so one vectorized pass advances every replica at once.

The same machinery powers a batched Borůvka minimum-spanning-tree
*bottleneck* kernel (:func:`batch_mst_bottleneck`): the exact connectivity
threshold of a snapshot is the largest MST edge, and Borůvka rounds are
exactly "each component hooks along its minimum outgoing edge" — the
no-scipy fallback for :func:`scipy.sparse.csgraph.minimum_spanning_tree`.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import get_kernel

__all__ = [
    "BatchUnionFind",
    "batch_components_from_edges",
    "mst_bottleneck",
    "batch_mst_bottleneck",
]


class BatchUnionFind:
    """Union-find over ``B`` independent replicas of ``n`` vertices each.

    Maintains the invariant that the flat parent array is *fully
    compressed* (``parent[parent] == parent``) and *min-rooted*
    (``parent[x] <= x``) between calls, so :meth:`labels` is a free read
    and successive :meth:`add_edges` calls ingest edges incrementally.

    Args:
        batch_size: number of independent replicas ``B``.
        n: vertices per replica.
    """

    def __init__(self, batch_size: int, n: int):
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self.batch_size = int(batch_size)
        self.n = int(n)
        self._parent = np.arange(self.batch_size * self.n, dtype=np.intp)

    # ------------------------------------------------------------------
    # Core rounds
    # ------------------------------------------------------------------
    def _shortcut(self) -> None:
        """Pointer-double the flat parent array to a fixpoint."""
        parent = self._parent
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
        self._parent = parent

    def _union_flat(self, u: np.ndarray, v: np.ndarray) -> None:
        """Union flat-id endpoint pairs by min-hooking + shortcutting."""
        kernel = get_kernel("union_fixpoint")
        if kernel is not None and kernel(self._parent, u, v) is not None:
            # Compiled tier: sequential union-by-min + a final compression
            # pass — same canonical min-rooted fixpoint as the vectorized
            # rounds below (labels are the component minima either way).
            return
        parent = self._parent
        while True:
            lu = parent[u]
            lv = parent[v]
            live = lu != lv
            if not live.any():
                return
            if not live.all():
                u = u[live]
                v = v[live]
                lu = lu[live]
                lv = lv[live]
            lo = np.minimum(lu, lv)
            hi = np.maximum(lu, lv)
            # Hook the larger root onto the smallest label offered across
            # all its incident edges this round; ties across edges resolve
            # to the minimum, so the result is edge-order independent.
            np.minimum.at(parent, hi, lo)
            self._shortcut()
            parent = self._parent

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_edges(self, u, v, replica=None) -> None:
        """Union vertex pairs ``(u[k], v[k])``, per replica.

        Args:
            u, v: integer arrays of equal length with values in ``[0, n)``.
            replica: per-edge replica indices in ``[0, B)``; ``None``
                applies every edge to *all* replicas (the common case of a
                shared edge list).
        """
        u = np.asarray(u, dtype=np.intp).ravel()
        v = np.asarray(v, dtype=np.intp).ravel()
        if u.shape != v.shape:
            raise ValueError(f"u and v must have equal shapes, got {u.shape} vs {v.shape}")
        if u.size == 0:
            return
        if u.size and (
            u.min() < 0 or u.max() >= self.n or v.min() < 0 or v.max() >= self.n
        ):
            raise ValueError(f"vertex ids must be in [0, {self.n})")
        if replica is None:
            offsets = np.arange(self.batch_size, dtype=np.intp)[:, None] * self.n
            fu = (u[None, :] + offsets).ravel()
            fv = (v[None, :] + offsets).ravel()
        else:
            replica = np.asarray(replica, dtype=np.intp).ravel()
            if replica.shape != u.shape:
                raise ValueError(
                    f"replica must match the edge arrays, got {replica.shape} vs {u.shape}"
                )
            if replica.size and (replica.min() < 0 or replica.max() >= self.batch_size):
                raise ValueError(f"replica ids must be in [0, {self.batch_size})")
            fu = replica * self.n + u
            fv = replica * self.n + v
        self._union_flat(fu, fv)

    # ------------------------------------------------------------------
    # Queries (all reads of the compressed invariant — no find() walks)
    # ------------------------------------------------------------------
    def labels(self) -> np.ndarray:
        """``(B, n)`` canonical labels: the min vertex id of each component."""
        labels = self._parent.reshape(self.batch_size, self.n).copy()
        if self.n:
            labels -= np.arange(self.batch_size, dtype=np.intp)[:, None] * self.n
        return labels

    def dense_labels(self) -> np.ndarray:
        """``(B, n)`` labels renumbered ``0..k-1`` per replica.

        Min-vertex canonical labels appear in increasing order along each
        replica's vertex scan, so dense renumbering by label rank equals
        renumbering by first occurrence.
        """
        if self.n == 0:
            return np.empty((self.batch_size, 0), dtype=np.intp)
        root = self._root_mask()
        rank = np.cumsum(root, axis=1) - 1
        labels = self._parent.reshape(self.batch_size, self.n)
        local = labels - np.arange(self.batch_size, dtype=np.intp)[:, None] * self.n
        return np.take_along_axis(rank, local, axis=1)

    def _root_mask(self) -> np.ndarray:
        """``(B, n)`` bool — True where the vertex is its component's root."""
        flat = self._parent == np.arange(self._parent.size, dtype=np.intp)
        return flat.reshape(self.batch_size, self.n)

    def n_components(self) -> np.ndarray:
        """``(B,)`` component counts."""
        return np.count_nonzero(self._root_mask(), axis=1)

    def connected_mask(self) -> np.ndarray:
        """``(B,)`` bool — replicas whose graph is connected (``<= 1`` comp)."""
        return self.n_components() <= 1

    def component_sizes_at_root(self) -> np.ndarray:
        """``(B, n)`` sizes scattered at each component's root (0 elsewhere)."""
        sizes = np.zeros(self._parent.size, dtype=np.intp)
        np.add.at(sizes, self._parent, 1)
        return sizes.reshape(self.batch_size, self.n)

    def giant_fraction(self) -> np.ndarray:
        """``(B,)`` fraction of vertices in each replica's largest component."""
        if self.n == 0:
            return np.zeros(self.batch_size)
        return self.component_sizes_at_root().max(axis=1) / self.n


def batch_components_from_edges(batch_size: int, n: int, replica, u, v) -> np.ndarray:
    """``(B, n)`` dense component labels of per-replica edge lists.

    The batched counterpart of
    :func:`repro.network.union_find.components_from_edges`.
    """
    uf = BatchUnionFind(batch_size, n)
    uf.add_edges(u, v, replica=replica)
    return uf.dense_labels()


# ----------------------------------------------------------------------
# MST bottleneck (exact connectivity threshold)
# ----------------------------------------------------------------------

_HAVE_SCIPY_MST = None


def _scipy_mst():
    """The scipy MST routine, or None (probed once per process)."""
    global _HAVE_SCIPY_MST
    if _HAVE_SCIPY_MST is None:
        try:
            from scipy.sparse import coo_matrix
            from scipy.sparse.csgraph import minimum_spanning_tree

            _HAVE_SCIPY_MST = (coo_matrix, minimum_spanning_tree)
        except ImportError:  # pragma: no cover - depends on environment
            _HAVE_SCIPY_MST = False
    return _HAVE_SCIPY_MST or None


def batch_mst_bottleneck(batch_size: int, n: int, replica, u, v, w) -> np.ndarray:
    """Largest MST edge weight per replica, by vectorized Borůvka rounds.

    Every round, each component selects its minimum-weight incident
    cross-component edge (ties broken by input position, which makes the
    effective weights distinct and the selection cycle-free) and the
    selected edges are merged with one :class:`BatchUnionFind` pass.  The
    maximum selected weight per replica is the MST *bottleneck* — for
    disk graphs with distance weights, the exact connectivity threshold.

    When scipy is importable the Borůvka loop is bypassed entirely: the
    flat ids lay every replica on one block-diagonal sparse matrix, and a
    single :func:`~scipy.sparse.csgraph.minimum_spanning_tree` call
    returns the spanning *forest* — per-replica MSTs, reduced to per-replica
    bottlenecks with one scatter-max.  Edges must be unique per replica
    (the sparse constructor sums duplicate entries); neighbor-engine pair
    enumerations satisfy this by construction.

    Args:
        batch_size: number of replicas ``B``.
        n: vertices per replica.
        replica, u, v: per-edge replica / endpoint arrays.
        w: per-edge weights (non-negative).

    Returns:
        ``(B,)`` float bottlenecks; ``inf`` where the replica's edge list
        does not connect its graph, ``0`` for ``n <= 1``.
    """
    best = np.zeros(batch_size, dtype=np.float64)
    if n <= 1:
        return best
    w = np.asarray(w, dtype=np.float64).ravel()
    replica = np.asarray(replica, dtype=np.intp).ravel()
    fu = replica * n + np.asarray(u, dtype=np.intp).ravel()
    fv = replica * n + np.asarray(v, dtype=np.intp).ravel()
    mst = _scipy_mst()
    if mst is not None:
        coo_matrix, minimum_spanning_tree = mst
        total = batch_size * n
        # Same +1 shift as mst_bottleneck: zero-weight edges (coincident
        # points) cannot be stored as explicit sparse zeros.
        matrix = coo_matrix((w + 1.0, (fu, fv)), shape=(total, total)).tocsr()
        tree = minimum_spanning_tree(matrix).tocoo()
        tree_replica = tree.row // n
        np.maximum.at(best, tree_replica, tree.data)
        best = np.maximum(best - 1.0, 0.0)
        best[np.bincount(tree_replica, minlength=batch_size) < n - 1] = np.inf
        return best
    uf = BatchUnionFind(batch_size, n)
    # Ascending stable sort: position in this list is the (weight, input
    # index) lexicographic rank — the distinct effective weight.
    order = np.argsort(w, kind="stable")
    fu, fv, w = fu[order], fv[order], w[order]
    while fu.size:
        parent = uf._parent
        lu = parent[fu]
        lv = parent[fv]
        cross = lu != lv
        # Merged-away edges never come back: prune them for good.
        fu, fv, w, lu, lv = fu[cross], fv[cross], w[cross], lu[cross], lv[cross]
        if fu.size == 0:
            break
        m = fu.size
        comp = np.concatenate([lu, lv])
        pos = np.concatenate([np.arange(m), np.arange(m)])
        sel = np.lexsort((pos, comp))
        comp_sorted = comp[sel]
        first = np.empty(comp_sorted.size, dtype=bool)
        first[0] = True
        first[1:] = comp_sorted[1:] != comp_sorted[:-1]
        chosen = np.unique(pos[sel[first]])
        np.maximum.at(best, fu[chosen] // n, w[chosen])
        uf._union_flat(fu[chosen], fv[chosen])
    best[uf.n_components() > 1] = np.inf
    return best


def mst_bottleneck(n: int, u, v, w) -> float:
    """Largest MST edge weight of one edge-list graph (``inf`` if disconnected).

    Uses :func:`scipy.sparse.csgraph.minimum_spanning_tree` when scipy is
    importable, the vectorized Borůvka of :func:`batch_mst_bottleneck`
    otherwise — both exact (the MST bottleneck value is unique even when
    the MST itself is not).
    """
    u = np.asarray(u, dtype=np.intp).ravel()
    v = np.asarray(v, dtype=np.intp).ravel()
    w = np.asarray(w, dtype=np.float64).ravel()
    if n <= 1:
        return 0.0
    if u.size == 0:
        return float("inf")
    mst = _scipy_mst()
    if mst is not None:
        coo_matrix, minimum_spanning_tree = mst
        # Shift weights by +1 so zero-weight edges (coincident points)
        # survive the sparse representation, which cannot hold explicit
        # zeros; the MST is invariant under the monotone shift.
        matrix = coo_matrix((w + 1.0, (u, v)), shape=(n, n)).tocsr()
        tree = minimum_spanning_tree(matrix)
        if tree.nnz < n - 1:
            return float("inf")
        return max(0.0, float(tree.data.max()) - 1.0)
    return float(
        batch_mst_bottleneck(1, n, np.zeros(u.size, dtype=np.intp), u, v, w)[0]
    )
