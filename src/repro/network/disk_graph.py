"""Symmetric disk graphs — the snapshot graphs ``G_t`` of the paper.

Two agents are adjacent iff their Euclidean distance is at most the
transmission radius ``R``.  The class wraps a point set + radius, builds the
edge list through a neighbor engine, and exposes the adjacency and component
structure needed by the connectivity analyses.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.neighbors import NeighborEngine, make_engine
from repro.geometry.points import as_points
from repro.network.union_find import components_from_edges

__all__ = ["DiskGraph"]


class DiskGraph:
    """Disk graph over a snapshot of agent positions.

    Args:
        positions: ``(n, 2)`` agent positions.
        radius: transmission radius ``R``.
        side: side length of the region (defaults to the positions' extent;
            pass the true ``L`` when available).
        engine: optional pre-built :class:`NeighborEngine`; by default the
            best available backend is used.
    """

    def __init__(self, positions, radius: float, side: float = None, engine: NeighborEngine = None):
        self.positions = as_points(positions)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self.radius = float(radius)
        if side is None:
            side = float(max(1e-9, self.positions.max())) if self.positions.size else 1.0
        self.side = float(side)
        self._engine = engine if engine is not None else make_engine("auto", self.side)
        self._edges: np.ndarray = None
        self._labels: np.ndarray = None

    @property
    def n(self) -> int:
        """Number of vertices (agents)."""
        return int(self.positions.shape[0])

    @property
    def edges(self) -> np.ndarray:
        """Edge list of shape ``(m, 2)`` with ``i < j`` (computed lazily)."""
        if self._edges is None:
            self._edges = self._engine.pairs_within(self.positions, self.radius)
        return self._edges

    @property
    def n_edges(self) -> int:
        return int(self.edges.shape[0])

    def degrees(self) -> np.ndarray:
        """Vertex degrees."""
        deg = np.zeros(self.n, dtype=np.intp)
        edges = self.edges
        if edges.size:
            np.add.at(deg, edges[:, 0], 1)
            np.add.at(deg, edges[:, 1], 1)
        return deg

    def component_labels(self) -> np.ndarray:
        """Connected-component label per vertex (cached)."""
        if self._labels is None:
            self._labels = components_from_edges(self.n, self.edges)
        return self._labels

    def n_components(self) -> int:
        if self.n == 0:
            return 0
        return int(self.component_labels().max()) + 1

    def is_connected(self) -> bool:
        """Whether the snapshot graph is connected (single component)."""
        return self.n_components() <= 1

    def component_sizes(self) -> np.ndarray:
        """Sizes of all components, descending."""
        labels = self.component_labels()
        sizes = np.bincount(labels)
        return np.sort(sizes)[::-1]

    def giant_component_fraction(self) -> float:
        """Fraction of vertices in the largest component."""
        if self.n == 0:
            return 0.0
        return float(self.component_sizes()[0]) / self.n

    def isolated_mask(self) -> np.ndarray:
        """Mask of degree-0 vertices."""
        return self.degrees() == 0

    def subgraph_is_connected(self, mask: np.ndarray) -> bool:
        """Whether the sub-disk-graph induced by ``mask`` is connected.

        Used to check the paper's claim that the *Central Zone* sub-network
        is w.h.p. connected even when the full graph is not.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n,):
            raise ValueError(f"mask must have shape ({self.n},), got {mask.shape}")
        count = int(np.count_nonzero(mask))
        if count <= 1:
            return True
        sub_positions = self.positions[mask]
        sub = DiskGraph(sub_positions, self.radius, side=self.side, engine=self._engine)
        return sub.is_connected()

    def to_networkx(self):
        """Export as a ``networkx.Graph`` (requires networkx; used in tests)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        graph.add_edges_from(map(tuple, self.edges.tolist()))
        return graph
