"""Connectivity analysis of MANET snapshots.

The paper's motivation hinges on a connectivity gap: under uniform-like
stationary distributions the connectivity threshold of the disk graph is
``Theta(sqrt(log n))`` (for ``L = sqrt(n)``; Gupta-Kumar / Penrose, refs
[18, 27]), whereas under MRWP the corner Suburb is so sparse that the
threshold is *exponentially* higher — "some root of n" (ref [13]).  The
flooding theorem operates far below that threshold, which is what makes it
surprising.

This module provides the empirical machinery: threshold estimation by
bisection over ``R``, giant-component curves, and zone-restricted
connectivity checks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.network.disk_graph import DiskGraph

__all__ = [
    "uniform_connectivity_threshold",
    "estimate_connectivity_threshold",
    "connectivity_profile",
    "zone_connectivity",
]


def uniform_connectivity_threshold(n: int, side: float) -> float:
    """Gupta-Kumar threshold ``L * sqrt(log n / (pi n))`` for uniform points.

    The radius at which a disk graph over ``n`` *uniform* points on an
    ``L x L`` square becomes connected w.h.p.  With ``L = sqrt(n)`` this is
    ``Theta(sqrt(log n))`` — the benchmark the MRWP threshold is compared
    against in Section 1.
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    return side * math.sqrt(math.log(n) / (math.pi * n))


def estimate_connectivity_threshold(
    positions: np.ndarray,
    side: float,
    tol: float = None,
    mask: np.ndarray = None,
) -> float:
    """Smallest radius making the snapshot (or a masked sub-snapshot) connected.

    Connectivity is monotone in ``R``, so bisection applies.  The exact
    threshold is the largest edge of the graph's minimum spanning tree; the
    bisection converges to it within ``tol``.

    Args:
        positions: ``(n, 2)`` snapshot.
        side: region side length (bisection upper bound is ``side * sqrt2``).
        tol: absolute tolerance on the radius (default ``side * 1e-3``).
        mask: optional boolean mask restricting to a sub-population (e.g.
            only Central-Zone agents).

    Returns:
        the estimated critical radius (an upper bisection endpoint, i.e. a
        radius at which the graph *is* connected).
    """
    positions = np.asarray(positions, dtype=np.float64)
    if mask is not None:
        positions = positions[np.asarray(mask, dtype=bool)]
    n = positions.shape[0]
    if n <= 1:
        return 0.0
    if tol is None:
        tol = side * 1e-3

    def _connected(radius: float) -> bool:
        return DiskGraph(positions, radius, side=side).is_connected()

    # Exponential bracketing upward from the uniform-case scale keeps the
    # probe radii (and hence the edge counts) near the actual threshold —
    # starting the bisection at side*sqrt(2) would enumerate O(n^2) edges.
    lo = 0.0
    try:
        hi = max(uniform_connectivity_threshold(n, side), tol)
    except ValueError:  # n < 2 is excluded above; defensive
        hi = side * 0.01
    cap = side * math.sqrt(2.0)
    while hi < cap and not _connected(hi):
        lo = hi
        hi = min(hi * 1.5, cap)
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if _connected(mid):
            hi = mid
        else:
            lo = mid
    return hi


def connectivity_profile(positions: np.ndarray, side: float, radii) -> dict:
    """Connectivity statistics of one snapshot across a radius sweep.

    Returns:
        dict of parallel arrays keyed by ``radius``, ``giant_fraction``,
        ``n_components``, ``isolated_fraction``, ``connected`` — the series
        plotted by the ``connectivity`` experiment.
    """
    positions = np.asarray(positions, dtype=np.float64)
    radii = np.asarray(list(radii), dtype=np.float64)
    giant = np.empty(radii.size)
    ncomp = np.empty(radii.size, dtype=np.intp)
    isolated = np.empty(radii.size)
    connected = np.empty(radii.size, dtype=bool)
    for k, radius in enumerate(radii):
        graph = DiskGraph(positions, float(radius), side=side)
        giant[k] = graph.giant_component_fraction()
        ncomp[k] = graph.n_components()
        isolated[k] = float(np.count_nonzero(graph.isolated_mask())) / max(1, graph.n)
        connected[k] = graph.is_connected()
    return {
        "radius": radii,
        "giant_fraction": giant,
        "n_components": ncomp,
        "isolated_fraction": isolated,
        "connected": connected,
    }


def zone_connectivity(positions: np.ndarray, side: float, radius: float, zone_mask: np.ndarray) -> dict:
    """Compare connectivity inside vs. outside a zone at a fixed radius.

    Args:
        zone_mask: True for agents inside the zone (e.g. the Central Zone).

    Returns:
        dict with ``zone_connected``, ``zone_giant_fraction``,
        ``outside_isolated_fraction``, ``full_connected`` — the quantities
        behind the paper's "connected center, disconnected suburb" picture.
    """
    positions = np.asarray(positions, dtype=np.float64)
    zone_mask = np.asarray(zone_mask, dtype=bool)
    full = DiskGraph(positions, radius, side=side)
    zone_positions = positions[zone_mask]
    outside_positions = positions[~zone_mask]
    result = {
        "full_connected": full.is_connected(),
        "full_giant_fraction": full.giant_component_fraction(),
    }
    if zone_positions.shape[0] > 0:
        zone_graph = DiskGraph(zone_positions, radius, side=side)
        result["zone_connected"] = zone_graph.is_connected()
        result["zone_giant_fraction"] = zone_graph.giant_component_fraction()
    else:
        result["zone_connected"] = True
        result["zone_giant_fraction"] = 0.0
    if outside_positions.shape[0] > 0:
        out_graph = DiskGraph(outside_positions, radius, side=side)
        result["outside_isolated_fraction"] = float(
            np.count_nonzero(out_graph.isolated_mask())
        ) / out_graph.n
        result["outside_giant_fraction"] = out_graph.giant_component_fraction()
    else:
        result["outside_isolated_fraction"] = 0.0
        result["outside_giant_fraction"] = 0.0
    return result
