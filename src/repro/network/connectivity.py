"""Connectivity analysis of MANET snapshots.

The paper's motivation hinges on a connectivity gap: under uniform-like
stationary distributions the connectivity threshold of the disk graph is
``Theta(sqrt(log n))`` (for ``L = sqrt(n)``; Gupta-Kumar / Penrose, refs
[18, 27]), whereas under MRWP the corner Suburb is so sparse that the
threshold is *exponentially* higher — "some root of n" (ref [13]).  The
flooding theorem operates far below that threshold, which is what makes it
surprising.

This module provides the empirical machinery, built on the vectorized
union-find core of :mod:`repro.network.batch_union_find`:

* **incremental radius sweeps** — :func:`connectivity_profile` enumerates
  the neighbor pairs *once* at the largest probe radius, sorts the edges
  by length, and replays unions prefix-by-prefix across the radius grid
  instead of rebuilding a disk graph per probe.  Canonical min-hooking
  labels make the replay byte-identical to per-radius rebuilds.
* **exact thresholds** — the critical radius of a snapshot is the largest
  edge of its minimum spanning tree (the MST *bottleneck*);
  :func:`estimate_connectivity_threshold` computes it directly (scipy's
  ``minimum_spanning_tree`` when importable, the vectorized Borůvka
  fallback otherwise), with the pre-existing bisection retained as
  ``method="bisect"`` for cross-validation.
* **batched variants** — :func:`batch_connectivity_profile` and
  :func:`batch_connectivity_threshold` run whole ``(B, n, 2)`` snapshot
  stacks through one tiled neighbor enumeration and one flat union-find.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.geometry.neighbors import BatchNeighborQuery
from repro.network.batch_union_find import (
    BatchUnionFind,
    batch_mst_bottleneck,
    mst_bottleneck,
)
from repro.network.disk_graph import DiskGraph

__all__ = [
    "uniform_connectivity_threshold",
    "estimate_connectivity_threshold",
    "batch_connectivity_threshold",
    "connectivity_profile",
    "batch_connectivity_profile",
    "zone_connectivity",
]


def uniform_connectivity_threshold(n: int, side: float) -> float:
    """Gupta-Kumar threshold ``L * sqrt(log n / (pi n))`` for uniform points.

    The radius at which a disk graph over ``n`` *uniform* points on an
    ``L x L`` square becomes connected w.h.p.  With ``L = sqrt(n)`` this is
    ``Theta(sqrt(log n))`` — the benchmark the MRWP threshold is compared
    against in Section 1.
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    return side * math.sqrt(math.log(n) / (math.pi * n))


# ----------------------------------------------------------------------
# Shared incremental machinery
# ----------------------------------------------------------------------

def _edge_lengths_sq(positions: np.ndarray, i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Squared edge lengths, with the engines' exact arithmetic
    (``sum(diff * diff)``) so radius comparisons agree bit-for-bit."""
    diff = positions[i] - positions[j]
    return np.sum(diff * diff, axis=1)


def _batch_edge_lengths_sq(positions, rep, i, j) -> np.ndarray:
    flat = positions.reshape(-1, 2)
    n = positions.shape[1]
    diff = flat[rep * n + i] - flat[rep * n + j]
    # einsum == sum(diff * diff, axis=1) bit-for-bit on 2-vectors (one
    # product per axis, one addition), without the reduction temporaries.
    return np.einsum("ij,ij->i", diff, diff)


def _incremental_profile(
    batch_size: int, n: int, rep: np.ndarray, i: np.ndarray, j: np.ndarray,
    d2: np.ndarray, radii: np.ndarray,
) -> dict:
    """Replay length-sorted edges across the radius grid — the shared core
    of the scalar and batched profiles.

    All edges must have been enumerated at (or above) ``radii.max()``.
    Returns ``(B, K)`` arrays in the *given* radius order.
    """
    n_radii = radii.size
    giant = np.zeros((batch_size, n_radii))
    ncomp = np.zeros((batch_size, n_radii), dtype=np.intp)
    isolated = np.zeros((batch_size, n_radii))
    connected = np.zeros((batch_size, n_radii), dtype=bool)
    if n_radii == 0:
        return {
            "giant_fraction": giant, "n_components": ncomp,
            "isolated_fraction": isolated, "connected": connected,
        }
    if n == 0:
        connected[:] = True  # 0 components
        return {
            "giant_fraction": giant, "n_components": ncomp,
            "isolated_fraction": isolated, "connected": connected,
        }
    # Per-vertex minimum incident squared length: a vertex is isolated at
    # radius r iff its nearest neighbor is farther than r — no degree
    # recount per probe.
    min_inc = np.full(batch_size * n, np.inf)
    if d2.size:
        np.minimum.at(min_inc, rep * n + i, d2)
        np.minimum.at(min_inc, rep * n + j, d2)
    min_inc = min_inc.reshape(batch_size, n)

    # Bucketize each edge by the first (ascending) probe radius that
    # includes it: a 16-bit radix argsort over K+1 buckets replaces a full
    # float argsort of the squared lengths, and the prefix boundaries come
    # from one searchsorted per probe.  Union order within a bucket is
    # irrelevant — canonical min-hooking labels are order-independent.
    r_order = np.argsort(radii, kind="stable")
    thresholds = np.where(radii[r_order] >= 0, radii[r_order] * radii[r_order], -np.inf)
    bucket = np.searchsorted(thresholds, d2, side="left").astype(
        np.uint16 if n_radii < 2**16 - 1 else np.intp
    )
    order = np.argsort(bucket, kind="stable")
    bucket = bucket[order]
    rep, i, j = rep[order], i[order], j[order]
    uf = BatchUnionFind(batch_size, n)
    start = 0
    for pos, k in enumerate(r_order):
        r = float(radii[k])
        stop = int(np.searchsorted(bucket, pos, side="right"))
        if stop > start:
            uf.add_edges(i[start:stop], j[start:stop], replica=rep[start:stop])
            start = stop
        ncomp[:, k] = uf.n_components()
        giant[:, k] = uf.giant_fraction()
        isolated[:, k] = np.count_nonzero(min_inc > r * r, axis=1) / max(1, n)
        connected[:, k] = ncomp[:, k] <= 1
    return {
        "giant_fraction": giant, "n_components": ncomp,
        "isolated_fraction": isolated, "connected": connected,
    }


def connectivity_profile(positions: np.ndarray, side: float, radii) -> dict:
    """Connectivity statistics of one snapshot across a radius sweep.

    The neighbor pairs are enumerated once at the largest probe radius and
    unions are replayed incrementally across the (sorted) grid — one edge
    enumeration and one union-find pass regardless of how many radii are
    probed, byte-identical to rebuilding a disk graph per radius.

    Returns:
        dict of parallel arrays keyed by ``radius``, ``giant_fraction``,
        ``n_components``, ``isolated_fraction``, ``connected`` — the series
        plotted by the ``connectivity`` experiment.
    """
    positions = np.asarray(positions, dtype=np.float64)
    radii = np.asarray(list(radii), dtype=np.float64)
    n = positions.shape[0]
    if radii.size == 0 or n == 0:
        profile = _incremental_profile(
            1, n, *(np.empty(0, dtype=np.intp),) * 3, np.empty(0), radii
        )
    else:
        rmax = float(radii.max())
        graph = DiskGraph(positions, max(rmax, 0.0), side=side)
        edges = graph.edges
        i = edges[:, 0] if edges.size else np.empty(0, dtype=np.intp)
        j = edges[:, 1] if edges.size else np.empty(0, dtype=np.intp)
        d2 = _edge_lengths_sq(positions, i, j)
        profile = _incremental_profile(1, n, np.zeros(i.size, dtype=np.intp), i, j, d2, radii)
    return {"radius": radii, **{key: val[0] for key, val in profile.items()}}


def batch_connectivity_profile(
    positions: np.ndarray, side: float, radii, backend: str = "auto"
) -> dict:
    """Connectivity profiles of a ``(B, n, 2)`` snapshot stack at once.

    One tiled neighbor enumeration at the largest probe radius feeds a
    single flat incremental union-find replay over every replica; each
    replica's row equals its scalar :func:`connectivity_profile`.

    Returns:
        dict like :func:`connectivity_profile` with ``(B, K)`` value arrays
        (``radius`` stays ``(K,)``).
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 3 or positions.shape[2] != 2:
        raise ValueError(f"positions must have shape (B, n, 2), got {positions.shape}")
    radii = np.asarray(list(radii), dtype=np.float64)
    batch_size, n = positions.shape[0], positions.shape[1]
    rmax = float(radii.max()) if radii.size else 0.0
    if radii.size == 0 or n == 0 or rmax <= 0:
        empty = np.empty(0, dtype=np.intp)
        profile = _incremental_profile(batch_size, n, empty, empty, empty, np.empty(0), radii)
    else:
        query = BatchNeighborQuery(side, batch_size, backend=backend)
        rep, i, j = query.bind(positions).pairs_within(rmax)
        d2 = _batch_edge_lengths_sq(positions, rep, i, j)
        profile = _incremental_profile(batch_size, n, rep, i, j, d2, radii)
    return {"radius": radii, **profile}


# ----------------------------------------------------------------------
# Thresholds
# ----------------------------------------------------------------------

def _sqrt_radius(d2: float) -> float:
    """Smallest float radius whose square covers ``d2`` (so the bottleneck
    edge is included at the returned radius)."""
    r = math.sqrt(d2)
    while r * r < d2:  # sqrt rounding may undershoot by an ulp
        r = math.nextafter(r, math.inf)
    return r


def _bracket_radius(n: int, side: float, tol: float) -> float:
    """Initial upward-bracketing radius (the uniform-case scale)."""
    try:
        return max(uniform_connectivity_threshold(n, side), tol)
    except ValueError:  # n < 2 is excluded by callers; defensive
        return side * 0.01


def estimate_connectivity_threshold(
    positions: np.ndarray,
    side: float,
    tol: Optional[float] = None,
    mask: Optional[np.ndarray] = None,
    method: str = "mst",
) -> float:
    """Smallest radius making the snapshot (or a masked sub-snapshot) connected.

    The exact threshold is the largest edge of the graph's minimum
    spanning tree (connectivity is monotone in ``R``, and the MST
    bottleneck is the minimax connecting radius).  The default method
    computes it directly: exponential bracketing upward from the
    uniform-case scale finds a radius at which the snapshot is connected
    (keeping the enumerated edge count near the threshold — starting at
    ``side * sqrt2`` would enumerate O(n^2) edges), then one MST pass over
    those edges yields the bottleneck.  ``method="bisect"`` retains the
    pre-existing bisection, which converges to the same value within
    ``tol``; the two are cross-checked in the parity tests and the
    ``network`` benchmark suite.

    Args:
        positions: ``(n, 2)`` snapshot.
        side: region side length (bracketing is capped at ``side * sqrt2``).
        tol: absolute radius tolerance — the bisection's stopping width and
            the bracketing floor (default ``side * 1e-3``).
        mask: optional boolean mask restricting to a sub-population (e.g.
            only Central-Zone agents).
        method: ``"mst"`` (exact, default) or ``"bisect"``.

    Returns:
        the critical radius — a radius at which the graph *is* connected
        (exactly the bottleneck for ``"mst"``, an upper bisection endpoint
        within ``tol`` of it for ``"bisect"``).
    """
    positions = np.asarray(positions, dtype=np.float64)
    if mask is not None:
        positions = positions[np.asarray(mask, dtype=bool)]
    n = positions.shape[0]
    if n <= 1:
        return 0.0
    if tol is None:
        tol = side * 1e-3
    if method not in ("mst", "bisect"):
        raise ValueError(f"method must be 'mst' or 'bisect', got {method!r}")

    cap = side * math.sqrt(2.0)
    if method == "bisect":
        def _connected(radius: float) -> bool:
            return DiskGraph(positions, radius, side=side).is_connected()

        lo = 0.0
        hi = _bracket_radius(n, side, tol)
        while hi < cap and not _connected(hi):
            lo = hi
            hi = min(hi * 1.5, cap)
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            if _connected(mid):
                hi = mid
            else:
                lo = mid
        return hi

    hi = min(_bracket_radius(n, side, tol), cap)
    while True:
        graph = DiskGraph(positions, hi, side=side)
        if graph.is_connected():
            break
        if hi >= cap:
            # Unreachable for in-region points (the diagonal connects
            # everything); defensive for callers feeding exotic positions.
            return cap
        hi = min(hi * 1.5, cap)
    edges = graph.edges
    d2 = _edge_lengths_sq(positions, edges[:, 0], edges[:, 1])
    bottleneck = mst_bottleneck(n, edges[:, 0], edges[:, 1], d2)
    if not math.isfinite(bottleneck):  # pragma: no cover - graph is connected
        return hi
    return _sqrt_radius(bottleneck)


def batch_connectivity_threshold(
    positions: np.ndarray,
    side: float,
    tol: Optional[float] = None,
    backend: str = "auto",
) -> np.ndarray:
    """Exact connectivity thresholds of a ``(B, n, 2)`` snapshot stack.

    The bracket ascends exactly like the scalar loop, but replicas
    *retire* as they connect: each iteration re-enumerates only the
    still-disconnected replicas, and a replica's edges are captured at the
    first bracketing radius that connects it (the MST of a connected
    subgraph at radius ``hi`` is the MST of the full disk graph, since
    every MST edge is at most the bottleneck, which is at most ``hi``).
    One batched MST pass over the union of those per-replica edge sets
    then yields every bottleneck — each entry equals the scalar
    :func:`estimate_connectivity_threshold`, which enumerates the same
    per-snapshot edge set.

    Returns:
        ``(B,)`` critical radii.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 3 or positions.shape[2] != 2:
        raise ValueError(f"positions must have shape (B, n, 2), got {positions.shape}")
    batch_size, n = positions.shape[0], positions.shape[1]
    if n <= 1:
        return np.zeros(batch_size)
    if tol is None:
        tol = side * 1e-3
    cap = side * math.sqrt(2.0)
    pending = np.arange(batch_size, dtype=np.intp)
    parts = []
    hi = min(_bracket_radius(n, side, tol), cap)
    while pending.size:
        sub = np.ascontiguousarray(positions[pending])
        query = BatchNeighborQuery(side, pending.size, backend=backend)
        rep, i, j = query.bind(sub).pairs_within(hi)
        uf = BatchUnionFind(pending.size, n)
        uf.add_edges(i, j, replica=rep)
        conn = uf.connected_mask()
        if hi >= cap:
            # Unreachable for in-region points; defensively capture the
            # remaining replicas (their MST stays a forest -> inf -> cap).
            conn[:] = True
        if conn.any():
            sel = conn[rep]
            rep_sel, i_sel, j_sel = rep[sel], i[sel], j[sel]
            parts.append(
                (pending[rep_sel], i_sel, j_sel, _batch_edge_lengths_sq(sub, rep_sel, i_sel, j_sel))
            )
            pending = pending[~conn]
        hi = min(hi * 1.5, cap)
    rep_all = np.concatenate([p[0] for p in parts]) if parts else np.empty(0, dtype=np.intp)
    i_all = np.concatenate([p[1] for p in parts]) if parts else np.empty(0, dtype=np.intp)
    j_all = np.concatenate([p[2] for p in parts]) if parts else np.empty(0, dtype=np.intp)
    d2_all = np.concatenate([p[3] for p in parts]) if parts else np.empty(0)
    bottleneck = batch_mst_bottleneck(batch_size, n, rep_all, i_all, j_all, d2_all)
    out = np.full(batch_size, cap)
    finite = np.isfinite(bottleneck)
    out[finite] = [_sqrt_radius(float(b)) for b in bottleneck[finite]]
    return out


def zone_connectivity(positions: np.ndarray, side: float, radius: float, zone_mask: np.ndarray) -> dict:
    """Compare connectivity inside vs. outside a zone at a fixed radius.

    Args:
        zone_mask: True for agents inside the zone (e.g. the Central Zone).

    Returns:
        dict with ``zone_connected``, ``zone_giant_fraction``,
        ``outside_isolated_fraction``, ``full_connected`` — the quantities
        behind the paper's "connected center, disconnected suburb" picture.
    """
    positions = np.asarray(positions, dtype=np.float64)
    zone_mask = np.asarray(zone_mask, dtype=bool)
    full = DiskGraph(positions, radius, side=side)
    zone_positions = positions[zone_mask]
    outside_positions = positions[~zone_mask]
    result = {
        "full_connected": full.is_connected(),
        "full_giant_fraction": full.giant_component_fraction(),
    }
    if zone_positions.shape[0] > 0:
        zone_graph = DiskGraph(zone_positions, radius, side=side)
        result["zone_connected"] = zone_graph.is_connected()
        result["zone_giant_fraction"] = zone_graph.giant_component_fraction()
    else:
        result["zone_connected"] = True
        result["zone_giant_fraction"] = 0.0
    if outside_positions.shape[0] > 0:
        out_graph = DiskGraph(outside_positions, radius, side=side)
        # Same max(1, n) divide guard as connectivity_profile (the branch
        # guarantees n >= 1, but the convention is uniform on purpose).
        result["outside_isolated_fraction"] = float(
            np.count_nonzero(out_graph.isolated_mask())
        ) / max(1, out_graph.n)
        result["outside_giant_fraction"] = out_graph.giant_component_fraction()
    else:
        result["outside_isolated_fraction"] = 0.0
        result["outside_giant_fraction"] = 0.0
    return result
