"""Temporal reachability on evolving disk graphs.

Flooding time equals the *eccentricity in journey time* of the source in
the evolving graph: an agent is reached at the first step ``t`` such that a
chain of informed agents has carried the message to within ``R`` of it, one
hop per step.  This module implements that temporal BFS directly over a
recorded :class:`~repro.network.snapshots.SnapshotSeries`, independently of
the protocol machinery in :mod:`repro.protocols` — the two implementations
are cross-validated in the integration tests.

Two execution paths:

* :func:`temporal_bfs` — the scalar reference: one source, one
  neighbor-engine query per step.
* :func:`batch_temporal_bfs` — ``S`` sources at once, treated as ``S``
  replicas of the same snapshot through a
  :class:`~repro.geometry.neighbors.BatchNeighborQuery`: one tiled engine
  call per step answers every source's infection test.  Both paths apply
  the identical exact distance predicate, so the times agree
  source-for-source (asserted in ``tests/test_network_batch.py``);
  :func:`journey_times` picks the batched kernel by default.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.neighbors import BatchNeighborQuery, make_engine
from repro.network.snapshots import SnapshotSeries

__all__ = [
    "temporal_bfs",
    "batch_temporal_bfs",
    "journey_times",
    "reachability_fraction",
]


def temporal_bfs(
    series: SnapshotSeries,
    source: int,
    multi_hop: bool = False,
    backend: str = "auto",
) -> np.ndarray:
    """Earliest informed time of every agent from a single source.

    Args:
        series: recorded snapshot sequence.
        source: index of the initially informed agent (informed at time 0).
        multi_hop: when True, the message traverses whole connected
            components within a single snapshot ("infinite bandwidth" /
            component flooding); when False (paper semantics) it advances
            one hop per time step.
        backend: neighbor-engine backend name.

    Returns:
        float array ``times`` of shape ``(n,)`` — ``times[i]`` is the first
        step at which agent ``i`` is informed, ``numpy.inf`` if never within
        the recorded horizon.
    """
    n = series.n
    if not 0 <= source < n:
        raise ValueError(f"source must be in [0, {n}), got {source}")
    engine = make_engine(backend, series.side)
    times = np.full(n, np.inf)
    times[source] = 0.0
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    for t in range(1, series.n_steps + 1):
        positions = series.positions_at(t)
        while True:
            uninformed_idx = np.nonzero(~informed)[0]
            if uninformed_idx.size == 0:
                return times
            hits = engine.any_within(positions[informed], positions[uninformed_idx], series.radius)
            newly = uninformed_idx[hits]
            if newly.size == 0:
                break
            informed[newly] = True
            times[newly] = t
            if not multi_hop:
                break
    return times


def batch_temporal_bfs(
    series: SnapshotSeries,
    sources,
    multi_hop: bool = False,
    backend: str = "auto",
) -> np.ndarray:
    """Earliest informed times from ``S`` sources, one engine call per step.

    Each source becomes one replica of a
    :class:`~repro.geometry.neighbors.BatchNeighborQuery` over the shared
    snapshot (tiled so cross-source hits are geometrically impossible), so
    the per-step infection tests of all sources run as a single vectorized
    query instead of ``S`` scalar sweeps — the same trick the batch
    simulation engine plays with independent trials.

    Returns:
        float array of shape ``(S, n)``, row ``k`` equal to
        ``temporal_bfs(series, sources[k], multi_hop)``.
    """
    sources = np.asarray(list(sources), dtype=np.intp)
    n = series.n
    n_sources = sources.size
    if n_sources == 0:
        return np.empty((0, n))
    if np.any((sources < 0) | (sources >= n)):
        raise ValueError(f"sources must be in [0, {n})")
    query = BatchNeighborQuery(series.side, n_sources, backend=backend)
    times = np.full((n_sources, n), np.inf)
    informed = np.zeros((n_sources, n), dtype=bool)
    rows = np.arange(n_sources)
    informed[rows, sources] = True
    times[rows, sources] = 0.0
    for t in range(1, series.n_steps + 1):
        if informed.all():
            break
        positions = np.ascontiguousarray(
            np.broadcast_to(series.positions_at(t)[None], (n_sources, n, 2))
        )
        snapshot = query.bind(positions)
        while True:
            hits = snapshot.any_within(informed, ~informed, series.radius)
            if not hits.any():
                break
            informed |= hits
            times[hits] = t
            if not multi_hop:
                break
    return times


def journey_times(
    series: SnapshotSeries, sources, multi_hop: bool = False, engine: str = "auto"
) -> np.ndarray:
    """Earliest informed times from each of several sources.

    Args:
        engine: ``"batch"`` (one tiled query per step over all sources),
            ``"scalar"`` (one :func:`temporal_bfs` sweep per source — the
            reference), or ``"auto"`` (batch).  Both produce identical
            times.

    Returns:
        array of shape ``(len(sources), n)``.
    """
    if engine in ("auto", "batch"):
        return batch_temporal_bfs(series, sources, multi_hop=multi_hop)
    if engine != "scalar":
        raise ValueError(f"engine must be 'auto', 'batch', or 'scalar', got {engine!r}")
    rows = [temporal_bfs(series, int(s), multi_hop=multi_hop) for s in sources]
    if not rows:
        return np.empty((0, series.n))
    return np.stack(rows, axis=0)


def reachability_fraction(series: SnapshotSeries, source: int, multi_hop: bool = False) -> np.ndarray:
    """Fraction of informed agents after each step, shape ``(T + 1,)``."""
    times = temporal_bfs(series, source, multi_hop=multi_hop)
    # Informed times are integer steps: one bincount + cumsum replaces the
    # per-step threshold counting loop.
    finite = times[np.isfinite(times)].astype(np.intp)
    counts = np.bincount(finite, minlength=series.n_steps + 1)
    return np.cumsum(counts).astype(np.float64) / series.n
