"""Temporal reachability on evolving disk graphs.

Flooding time equals the *eccentricity in journey time* of the source in
the evolving graph: an agent is reached at the first step ``t`` such that a
chain of informed agents has carried the message to within ``R`` of it, one
hop per step.  This module implements that temporal BFS directly over a
recorded :class:`~repro.network.snapshots.SnapshotSeries`, independently of
the protocol machinery in :mod:`repro.protocols` — the two implementations
are cross-validated in the integration tests.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.neighbors import make_engine
from repro.network.snapshots import SnapshotSeries

__all__ = ["temporal_bfs", "journey_times", "reachability_fraction"]


def temporal_bfs(
    series: SnapshotSeries,
    source: int,
    multi_hop: bool = False,
    backend: str = "auto",
) -> np.ndarray:
    """Earliest informed time of every agent from a single source.

    Args:
        series: recorded snapshot sequence.
        source: index of the initially informed agent (informed at time 0).
        multi_hop: when True, the message traverses whole connected
            components within a single snapshot ("infinite bandwidth" /
            component flooding); when False (paper semantics) it advances
            one hop per time step.
        backend: neighbor-engine backend name.

    Returns:
        float array ``times`` of shape ``(n,)`` — ``times[i]`` is the first
        step at which agent ``i`` is informed, ``numpy.inf`` if never within
        the recorded horizon.
    """
    n = series.n
    if not 0 <= source < n:
        raise ValueError(f"source must be in [0, {n}), got {source}")
    engine = make_engine(backend, series.side)
    times = np.full(n, np.inf)
    times[source] = 0.0
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    for t in range(1, series.n_steps + 1):
        positions = series.positions_at(t)
        while True:
            uninformed_idx = np.nonzero(~informed)[0]
            if uninformed_idx.size == 0:
                return times
            hits = engine.any_within(positions[informed], positions[uninformed_idx], series.radius)
            newly = uninformed_idx[hits]
            if newly.size == 0:
                break
            informed[newly] = True
            times[newly] = t
            if not multi_hop:
                break
    return times


def journey_times(series: SnapshotSeries, sources, multi_hop: bool = False) -> np.ndarray:
    """Earliest informed times from each of several sources.

    Returns:
        array of shape ``(len(sources), n)``.
    """
    rows = [temporal_bfs(series, int(s), multi_hop=multi_hop) for s in sources]
    return np.stack(rows, axis=0)


def reachability_fraction(series: SnapshotSeries, source: int, multi_hop: bool = False) -> np.ndarray:
    """Fraction of informed agents after each step, shape ``(T + 1,)``."""
    times = temporal_bfs(series, source, multi_hop=multi_hop)
    steps = np.arange(series.n_steps + 1)
    return np.array([np.count_nonzero(times <= t) for t in steps], dtype=np.float64) / series.n
