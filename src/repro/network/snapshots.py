"""Snapshot sequences: the Markovian evolving graph view of a MANET.

At every time step the MANET induces a disk graph ``G_t``; the flooding
analysis reasons over the *sequence* ``G_0, G_1, ...`` (a Markovian evolving
graph, paper refs [2, 9, 10]).  :class:`SnapshotSeries` materializes the
position frames of a mobility run and hands out per-step
:class:`~repro.network.disk_graph.DiskGraph` views lazily.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel
from repro.network.disk_graph import DiskGraph

__all__ = ["SnapshotSeries", "take_snapshots"]


def take_snapshots(model: MobilityModel, steps: int, dt: float = 1.0) -> np.ndarray:
    """Run a mobility model for ``steps`` steps recording every position frame.

    Returns:
        array of shape ``(steps + 1, n, 2)``; frame 0 is the state before
        the first step.
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    frames = np.empty((steps + 1, model.n, 2), dtype=np.float64)
    frames[0] = model.positions
    for t in range(1, steps + 1):
        frames[t] = model.step(dt)
    return frames


class SnapshotSeries:
    """A recorded sequence of MANET snapshots with a fixed radius.

    Args:
        frames: position array of shape ``(T + 1, n, 2)``.
        radius: transmission radius ``R`` shared by all snapshots.
        side: region side length.
    """

    def __init__(self, frames: np.ndarray, radius: float, side: float):
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 3 or frames.shape[2] != 2:
            raise ValueError(f"frames must have shape (T+1, n, 2), got {frames.shape}")
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        self.frames = frames
        self.radius = float(radius)
        self.side = float(side)

    @classmethod
    def record(cls, model: MobilityModel, steps: int, radius: float, dt: float = 1.0) -> "SnapshotSeries":
        """Record ``steps`` steps of ``model`` into a series."""
        return cls(take_snapshots(model, steps, dt), radius, model.side)

    @property
    def n_steps(self) -> int:
        """Number of recorded steps (frames minus the initial one)."""
        return int(self.frames.shape[0]) - 1

    @property
    def n(self) -> int:
        """Number of agents."""
        return int(self.frames.shape[1])

    def positions_at(self, t: int) -> np.ndarray:
        """Positions at time step ``t`` (0 = initial)."""
        return self.frames[t]

    def graph_at(self, t: int) -> DiskGraph:
        """Disk graph of the snapshot at time step ``t``."""
        return DiskGraph(self.frames[t], self.radius, side=self.side)

    def __iter__(self):
        for t in range(self.frames.shape[0]):
            yield self.graph_at(t)

    def displacement_per_step(self) -> np.ndarray:
        """Euclidean displacement of each agent per step, shape ``(T, n)``.

        Under the paper's slow-mobility assumption (Ineq. 8) every entry is
        at most ``v <= R / (3 (1 + sqrt 5))``; the tests use this to verify
        the kinematics.
        """
        diffs = np.diff(self.frames, axis=0)
        return np.sqrt(np.sum(diffs * diffs, axis=2))
