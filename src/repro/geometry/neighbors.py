"""Neighbor engines: a uniform interface over spatial indexes.

The simulation core only needs three primitives per snapshot:

* ``any_within(sources, queries, r)`` — which query points have a source
  point within Euclidean distance ``r`` (flooding's infection test);
* ``count_within(...)`` — occupancy counts (density condition, Lemma 7);
* ``pairs_within(points, r)`` — all edges of the disk graph ``G_t``.

Two interchangeable backends implement them:

* :class:`GridNeighborEngine` — the pure-numpy bucket grid of
  :mod:`repro.geometry.grid` (no dependencies beyond numpy);
* :class:`KDTreeNeighborEngine` — scipy's cKDTree, typically faster for
  large ``n``.

Use :func:`make_engine` to construct one by name; ``"auto"`` picks the
KD-tree when scipy is importable and falls back to the grid otherwise.

Two layers sit on top of the raw engines (DESIGN.md, "Incremental and
frontier-pruned neighbor subsystem"):

* **Bound snapshots** — within one communication round the positions are
  frozen, so :meth:`NeighborEngine.bind` freezes them into a
  :class:`BoundSnapshot` whose spatial index is built once and shared by
  every query on the snapshot (the multi-hop exchange loop, paired
  ``any_within``/``count_within`` calls).  The grid backend additionally
  keeps a persistent :class:`~repro.geometry.incremental.IncrementalGridIndex`
  across ``bind`` calls, splicing per-step displacements instead of
  re-sorting every round.

* **Batched queries** — the batch simulation engine answers the
  per-replica queries of **B independent trials with one engine call**
  through :class:`BatchNeighborQuery`: each replica's points are
  translated into a disjoint tile of a larger virtual square, tiles
  separated by more than the query radius, so a single spatial index over
  the union can never report a cross-replica hit.  Its cell-cover strategy
  prunes informed sources far from the uninformed frontier before any
  binning (exact — see :meth:`BatchBoundQuery.any_within`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.grid import GridIndex
from repro.geometry.incremental import IncrementalBatchOccupancy, IncrementalGridIndex
from repro.geometry.points import as_points
from repro.kernels import get_kernel

__all__ = [
    "NeighborEngine",
    "BoundSnapshot",
    "GridNeighborEngine",
    "KDTreeNeighborEngine",
    "BruteForceNeighborEngine",
    "BatchNeighborQuery",
    "BatchBoundQuery",
    "make_engine",
    "available_backends",
]


class BoundSnapshot:
    """Radius queries bound to one frozen ``(n, 2)`` position snapshot.

    Obtained from :meth:`NeighborEngine.bind`.  All methods take *index
    arrays into the bound snapshot* rather than coordinate arrays, so the
    engine-specific spatial index can be built once and shared by every
    query on the snapshot: the hops of a multi-hop exchange round, and
    paired ``any_within``/``count_within`` calls.

    This base implementation delegates to the engine's coordinate API per
    call (correct for any engine, no sharing); the grid and KD-tree
    engines override it with index-reusing variants.
    """

    def __init__(self, engine: "NeighborEngine", points: np.ndarray, radius: float):
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        self.engine = engine
        self.points = points
        self.radius = float(radius)

    def any_within(self, source_idx, query_idx) -> np.ndarray:
        """Mask over ``query_idx``: has a point of ``source_idx`` within radius."""
        return self.engine.any_within(
            self.points[source_idx], self.points[query_idx], self.radius
        )

    def count_within(self, source_idx, query_idx) -> np.ndarray:
        """Per-query count of ``source_idx`` points within the bound radius."""
        return self.engine.count_within(
            self.points[source_idx], self.points[query_idx], self.radius
        )

    def contacts_within(self, source_idx, query_idx) -> tuple:
        """All (source, query) agent pairs within the bound radius.

        The bipartite materialization behind the neighbor-sampling
        protocols: gossip and push-pull only ever need the edges crossing
        the informed/uninformed cut, which is far smaller than the full
        disk graph at both ends of a run.  This base implementation is
        O(S * Q) (fine for the brute engine); grid and KD-tree override it
        with index-backed variants.

        Returns:
            ``(sources, queries)`` agent-index arrays of equal length, in
            unspecified order.
        """
        source_idx = np.asarray(source_idx, dtype=np.intp)
        query_idx = np.asarray(query_idx, dtype=np.intp)
        if source_idx.size == 0 or query_idx.size == 0:
            return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
        diff = self.points[query_idx][:, None, :] - self.points[source_idx][None, :, :]
        dist2 = np.sum(diff * diff, axis=-1)
        qpos, spos = np.nonzero(dist2 <= self.radius * self.radius)
        return source_idx[spos], query_idx[qpos]

    def pairs_within(self) -> np.ndarray:
        """All unordered pairs of the snapshot within the bound radius.

        The snapshot counterpart of :meth:`NeighborEngine.pairs_within`
        for per-step edge extraction over a recorded series (disk-graph
        snapshots, contact traces): binding each frame lets persistent
        backends splice per-step displacements instead of re-sorting every
        frame.  This base implementation delegates to the engine's
        coordinate API; the grid snapshot overrides it with the persistent
        incremental full index, the KD-tree snapshot with a fast-build
        throwaway tree.

        Returns:
            ``(k, 2)`` intp pairs with ``i < j``, in backend order.
        """
        return self.engine.pairs_within(self.points, self.radius)


class NeighborEngine:
    """Interface for radius-based neighbor queries on a square region."""

    name = "abstract"

    def __init__(self, side: float):
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        self.side = float(side)

    def any_within(self, sources, queries, radius: float) -> np.ndarray:
        """Mask over ``queries``: has >= 1 point of ``sources`` within ``radius``."""
        raise NotImplementedError

    def count_within(self, sources, queries, radius: float) -> np.ndarray:
        """Per-query count of ``sources`` points within ``radius``."""
        raise NotImplementedError

    def pairs_within(self, points, radius: float) -> np.ndarray:
        """All unordered pairs of ``points`` within ``radius``; shape ``(k, 2)``."""
        raise NotImplementedError

    def bind(self, points, radius: float) -> BoundSnapshot:
        """Freeze ``points`` into a :class:`BoundSnapshot` for masked queries.

        The snapshot is valid until the next ``bind`` call on the same
        engine (persistent backends recycle their index between rounds).
        """
        return BoundSnapshot(self, as_points(points), radius)


class _GridSnapshot(BoundSnapshot):
    """Grid-backed snapshot with an adaptive index side.

    Most queries get a small throwaway index over just the sources
    (memoized on the index-array identity, so paired ``any_within`` /
    ``count_within`` calls share it) — exactly the pre-snapshot behaviour.
    When the sources are dense *and* the queries few (late flooding
    rounds: informed ~ n, a handful of stragglers), re-sorting ~n sources
    every round is the dominant waste, so the snapshot switches to the
    engine's persistent full-snapshot index (splice-updated between
    rounds when the engine is incremental) with a source-membership
    filter on the candidate pairs.  Both paths run the same inclusive
    distance test, so results are identical.
    """

    #: Full-index path: sources above this fraction of n ...
    _DENSE_SOURCE_FRACTION = 0.5
    #: ... and queries below this fraction of n.
    _FEW_QUERY_FRACTION = 0.125

    def __init__(self, engine, points, radius):
        super().__init__(engine, points, radius)
        self._full = None  # lazily built/updated persistent index
        self._memo = None  # (source_idx, index) for the sparse path

    def _full_index(self) -> GridIndex:
        if self._full is None:
            self._full = self.engine._bound_index(self.points, self.radius)
        return self._full

    def _source_index(self, source_idx) -> GridIndex:
        memo = self._memo
        if memo is not None and memo[0] is source_idx:
            return memo[1]
        index = GridIndex(self.engine.side, self.engine._cell_for(self.radius))
        index.build(self.points[source_idx])
        self._memo = (source_idx, index)
        return index

    def _masked_candidates(self, source_idx, queries) -> tuple:
        """Exact ``(query position, source agent)`` matches against the
        persistent full index, membership-filtered to ``source_idx`` —
        shared by the dense-source paths of ``any_within`` /
        ``count_within`` / ``contacts_within``."""
        source_mask = np.zeros(self.points.shape[0], dtype=bool)
        source_mask[source_idx] = True
        index = self._full_index()
        qidx, pidx = index._candidate_arrays(queries, self.radius)
        keep = source_mask[pidx]
        qidx = qidx[keep]
        pidx = pidx[keep]
        if qidx.size:
            diff = queries[qidx] - self.points[pidx]
            hit = np.sum(diff * diff, axis=1) <= self.radius * self.radius
            qidx = qidx[hit]
            pidx = pidx[hit]
        return qidx, pidx

    def _masked_full(self, source_idx, queries):
        return self._masked_candidates(source_idx, queries)[0]

    def _use_full(self, source_idx, query_idx) -> bool:
        n = self.points.shape[0]
        return (
            source_idx.size > self._DENSE_SOURCE_FRACTION * n
            and query_idx.size < self._FEW_QUERY_FRACTION * n
        )

    def any_within(self, source_idx, query_idx) -> np.ndarray:
        source_idx = np.asarray(source_idx, dtype=np.intp)
        query_idx = np.asarray(query_idx, dtype=np.intp)
        if source_idx.size == 0 or query_idx.size == 0:
            return np.zeros(query_idx.size, dtype=bool)
        if not self._use_full(source_idx, query_idx):
            return self._source_index(source_idx).any_within(
                self.points[query_idx], self.radius
            )
        queries = self.points[query_idx]
        result = np.zeros(queries.shape[0], dtype=bool)
        result[self._masked_full(source_idx, queries)] = True
        return result

    def count_within(self, source_idx, query_idx) -> np.ndarray:
        source_idx = np.asarray(source_idx, dtype=np.intp)
        query_idx = np.asarray(query_idx, dtype=np.intp)
        if source_idx.size == 0 or query_idx.size == 0:
            return np.zeros(query_idx.size, dtype=np.intp)
        if not self._use_full(source_idx, query_idx):
            return self._source_index(source_idx).count_within(
                self.points[query_idx], self.radius
            )
        queries = self.points[query_idx]
        counts = np.zeros(queries.shape[0], dtype=np.intp)
        np.add.at(counts, self._masked_full(source_idx, queries), 1)
        return counts

    def contacts_within(self, source_idx, query_idx) -> tuple:
        source_idx = np.asarray(source_idx, dtype=np.intp)
        query_idx = np.asarray(query_idx, dtype=np.intp)
        empty = np.empty(0, dtype=np.intp)
        if source_idx.size == 0 or query_idx.size == 0:
            return empty, empty
        queries = self.points[query_idx]
        if self._use_full(source_idx, query_idx):
            # Dense sources, few queries: reuse the persistent full-snapshot
            # index (candidates carry agent ids directly).
            qidx, sources = self._masked_candidates(source_idx, queries)
            return sources, query_idx[qidx]
        index = self._source_index(source_idx)
        qidx, pidx = index._candidate_arrays(queries, self.radius)
        if qidx.size == 0:
            return empty, empty
        sources = source_idx[pidx]
        diff = queries[qidx] - self.points[sources]
        hit = np.sum(diff * diff, axis=1) <= self.radius * self.radius
        return sources[hit], query_idx[qidx[hit]]

    def pairs_within(self) -> np.ndarray:
        # The persistent full index splices per-step displacements across
        # binds, so frame-by-frame edge extraction never re-sorts n points.
        return self._full_index().pairs_within(self.radius)


class GridNeighborEngine(NeighborEngine):
    """Bucket-grid backend (pure numpy).

    Args:
        side: side length of the square region.
        cell_size: bucket side override (default ``max(radius, side/512)``
            per query).
        incremental: when True (default), :meth:`bind` maintains a
            persistent :class:`IncrementalGridIndex` across rounds and
            splices per-step displacements; when False every ``bind``
            builds a fresh index (the pre-incremental behaviour, kept for
            the parity sweeps and the bench baseline).
    """

    name = "grid"

    def __init__(self, side: float, cell_size: float = None, incremental: bool = True):
        super().__init__(side)
        self._cell_size = cell_size
        self.incremental = bool(incremental)
        self._bound_indexes: dict = {}

    def _cell_for(self, radius: float) -> float:
        return self._cell_size if self._cell_size is not None else max(radius, self.side / 512.0)

    def _index(self, points, radius: float) -> GridIndex:
        """Fresh index over ``points`` for ``radius`` queries.

        Deliberately *not* memoized: coordinate-API callers pass freshly
        gathered arrays every call (``positions[mask]``), so an
        identity-keyed memo would never hit — and a content-keyed one
        costs as much as the build it saves.  Callers that genuinely
        query one snapshot repeatedly share an index through
        :meth:`bind`, where array identity is stable.
        """
        index = GridIndex(self.side, self._cell_for(radius))
        index.build(points)
        return index

    def _bound_index(self, points, radius: float) -> GridIndex:
        """Full-snapshot index for dense masked queries — persistent and
        splice-updated between rounds when the engine is incremental."""
        cell = self._cell_for(radius)
        if not self.incremental:
            return GridIndex(self.side, cell).build(points)
        index = self._bound_indexes.get(cell)
        if index is None:
            if len(self._bound_indexes) >= 4:  # defensive: unbounded radii churn
                self._bound_indexes.clear()
            index = IncrementalGridIndex(self.side, cell)
            self._bound_indexes[cell] = index
        index.update(points)
        return index

    def bind(self, points, radius: float) -> BoundSnapshot:
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        return _GridSnapshot(self, as_points(points), radius)

    def any_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=bool)
        return self._index(sources, radius).any_within(queries, radius)

    def count_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=np.intp)
        return self._index(sources, radius).count_within(queries, radius)

    def pairs_within(self, points, radius: float) -> np.ndarray:
        points = as_points(points)
        if points.shape[0] == 0:
            return np.empty((0, 2), dtype=np.intp)
        return self._index(points, radius).pairs_within(radius)


class _KDTreeSnapshot(BoundSnapshot):
    """KD-tree snapshot: one tree per distinct source set, shared by calls.

    Trees are memoized on the identity of the ``source_idx`` array, so the
    ``any_within``/``count_within`` pair of a round builds one tree, and
    the frontier hops of a multi-hop round each build one small tree over
    the newly informed agents only.
    """

    def __init__(self, engine, points, radius):
        super().__init__(engine, points, radius)
        self._memo = None  # (source_idx, tree)

    def _tree(self, source_idx):
        memo = self._memo
        if memo is not None and memo[0] is source_idx:
            return memo[1]
        # Snapshot trees live for one communication round: skip the
        # balancing passes, which dominate construction at these sizes.
        tree = self.engine._cKDTree(
            self.points[source_idx], balanced_tree=False, compact_nodes=False
        )
        self._memo = (source_idx, tree)
        return tree

    def any_within(self, source_idx, query_idx) -> np.ndarray:
        source_idx = np.asarray(source_idx, dtype=np.intp)
        query_idx = np.asarray(query_idx, dtype=np.intp)
        if source_idx.size == 0 or query_idx.size == 0:
            return np.zeros(query_idx.size, dtype=bool)
        dist, _ = self._tree(source_idx).query(
            self.points[query_idx], k=1, distance_upper_bound=self.radius * (1 + 1e-12)
        )
        return np.isfinite(dist)

    def count_within(self, source_idx, query_idx) -> np.ndarray:
        source_idx = np.asarray(source_idx, dtype=np.intp)
        query_idx = np.asarray(query_idx, dtype=np.intp)
        if source_idx.size == 0 or query_idx.size == 0:
            return np.zeros(query_idx.size, dtype=np.intp)
        counts = self._tree(source_idx).query_ball_point(
            self.points[query_idx], r=self.radius, return_length=True
        )
        return np.asarray(counts, dtype=np.intp)

    def contacts_within(self, source_idx, query_idx) -> tuple:
        source_idx = np.asarray(source_idx, dtype=np.intp)
        query_idx = np.asarray(query_idx, dtype=np.intp)
        if source_idx.size == 0 or query_idx.size == 0:
            return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
        query_tree = self.engine._cKDTree(
            self.points[query_idx], balanced_tree=False, compact_nodes=False
        )
        hits = self._tree(source_idx).sparse_distance_matrix(
            query_tree, max_distance=self.radius, output_type="ndarray"
        )
        return source_idx[hits["i"]], query_idx[hits["j"]]

    def pairs_within(self) -> np.ndarray:
        # Throwaway per-frame tree: skip the balancing passes, which
        # dominate construction at snapshot sizes.
        tree = self.engine._cKDTree(self.points, balanced_tree=False, compact_nodes=False)
        pairs = tree.query_pairs(r=self.radius, output_type="ndarray")
        return pairs.astype(np.intp, copy=False)


class KDTreeNeighborEngine(NeighborEngine):
    """scipy cKDTree backend.

    Raises:
        ImportError: when scipy is not installed; use ``make_engine("auto")``
            to fall back gracefully.
    """

    name = "kdtree"

    def __init__(self, side: float):
        super().__init__(side)
        from scipy.spatial import cKDTree  # noqa: F401 - import check

        self._cKDTree = cKDTree

    def bind(self, points, radius: float) -> BoundSnapshot:
        return _KDTreeSnapshot(self, as_points(points), radius)

    def any_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0 or queries.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=bool)
        tree = self._cKDTree(sources)
        dist, _ = tree.query(queries, k=1, distance_upper_bound=radius * (1 + 1e-12))
        return np.isfinite(dist)

    def count_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0 or queries.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=np.intp)
        tree = self._cKDTree(sources)
        counts = tree.query_ball_point(queries, r=radius, return_length=True)
        return np.asarray(counts, dtype=np.intp)

    def pairs_within(self, points, radius: float) -> np.ndarray:
        points = as_points(points)
        if points.shape[0] == 0:
            return np.empty((0, 2), dtype=np.intp)
        tree = self._cKDTree(points)
        pairs = tree.query_pairs(r=radius, output_type="ndarray")
        return pairs.astype(np.intp, copy=False)


class BruteForceNeighborEngine(NeighborEngine):
    """O(n*m) reference implementation used to validate the real engines."""

    name = "brute"

    def any_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=bool)
        diff = queries[:, None, :] - sources[None, :, :]
        dist2 = np.sum(diff * diff, axis=-1)
        return np.any(dist2 <= radius * radius, axis=1)

    def count_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=np.intp)
        diff = queries[:, None, :] - sources[None, :, :]
        dist2 = np.sum(diff * diff, axis=-1)
        return np.sum(dist2 <= radius * radius, axis=1).astype(np.intp)

    def pairs_within(self, points, radius: float) -> np.ndarray:
        points = as_points(points)
        n = points.shape[0]
        if n == 0:
            return np.empty((0, 2), dtype=np.intp)
        diff = points[:, None, :] - points[None, :, :]
        dist2 = np.sum(diff * diff, axis=-1)
        i, j = np.nonzero(np.triu(dist2 <= radius * radius, k=1))
        return np.stack([i, j], axis=1).astype(np.intp)


def _dilate(occ: np.ndarray, reach: int) -> np.ndarray:
    """Boolean Chebyshev-box dilation of a ``(B, m, m)`` occupancy stack.

    ``out[b, i, j]`` is True iff some ``occ[b, i', j']`` is True with
    ``max(|i'-i|, |j'-j|) <= reach`` (grid edges clipped) — computed as a
    few shifted ORs over byte arrays (the covered radius grows
    ``1, +2, +4, ...`` per pass) instead of the integer cumulative-sum
    box filters this kernel used before.
    """
    out = occ.copy()
    if reach <= 0:
        return out
    for axis in (1, 2):
        covered = 0
        while covered < reach:
            step = min(covered + 1, reach - covered)
            if axis == 1:
                out[:, step:, :] |= out[:, :-step, :]
                out[:, :-step, :] |= out[:, step:, :]
            else:
                out[:, :, step:] |= out[:, :, :-step]
                out[:, :, :-step] |= out[:, :, step:]
            covered += step
    return out


class BatchBoundQuery:
    """Per-replica queries bound to one ``(B, n, 2)`` snapshot.

    Obtained from :meth:`BatchNeighborQuery.bind`.  Within the snapshot's
    lifetime (one communication round) the derived per-agent cell
    assignments and tiled coordinates are computed at most once and shared
    by every hop and every ``any_within``/``count_within`` call.  The
    snapshot is valid until the next ``bind`` on the same query object.
    """

    def __init__(self, query: "BatchNeighborQuery", positions: np.ndarray, rows=None):
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 3 or positions.shape[2] != 2:
            raise ValueError(f"positions must have shape (B, n, 2), got {positions.shape}")
        if positions.shape[0] != query.batch_size:
            raise ValueError(
                f"expected {query.batch_size} replicas, got {positions.shape[0]}"
            )
        self.query = query
        self.positions = positions
        self.rows = rows
        self._cells = {}  # cell size -> (gid, m) for this snapshot
        self._shifted = {}  # radius -> (flat shifted coords, big_side)

    # ------------------------------------------------------------------
    # Shared per-snapshot derived state
    # ------------------------------------------------------------------
    def _cells_for(self, radius: float):
        """Per-agent global cell ids for the cell-cover kernel (or None
        when the occupancy grid would be unreasonably large)."""
        divisor = self.query._COVER_DIVISOR
        cell = radius / divisor
        key = cell
        cached = self._cells.get(key)
        if cached is not None:
            return cached
        m = max(1, int(math.ceil(self.query.side / cell)))
        batch, n, _ = self.positions.shape
        if batch * m * m > self.query._MAX_COVER_CELLS:
            self._cells[key] = None
            return None
        if self.query.incremental:
            occupancy = self.query._occupancy_for(cell, m)
            occupancy.update(self.positions, rows=self.rows)
            gid = occupancy.gid
        else:
            ij = (self.positions * (1.0 / cell)).astype(np.int64)
            np.clip(ij, 0, m - 1, out=ij)
            cid = ij[..., 0] * m + ij[..., 1]
            gid = cid + np.arange(batch, dtype=np.int64)[:, None] * (m * m)
        self._cells[key] = (gid, m)
        return self._cells[key]

    def _shifted_for(self, radius: float):
        """Tile-shifted flat coordinates (cached per radius)."""
        cached = self._shifted.get(radius)
        if cached is None:
            cached = self.query._shift(self.positions, radius)
            self._shifted[radius] = cached
        return cached

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _check_masks(self, source_mask, query_mask):
        batch, n, _ = self.positions.shape
        source_mask = np.asarray(source_mask, dtype=bool)
        query_mask = np.asarray(query_mask, dtype=bool)
        if source_mask.shape != (batch, n) or query_mask.shape != (batch, n):
            raise ValueError("masks must have shape (B, n) matching the positions")
        return source_mask, query_mask

    def _tiled(self, method, source_mask, query_mask, radius):
        flat, big_side = self._shifted_for(radius)
        source_mask = source_mask.reshape(-1)
        query_mask = query_mask.reshape(-1)
        engine = _BACKENDS[self.query._tiled_backend](big_side)
        out = getattr(engine, method)(flat[source_mask], flat[query_mask], radius)
        result_dtype = bool if method == "any_within" else np.intp
        full = np.zeros(flat.shape[0], dtype=result_dtype)
        full[query_mask] = out
        return full.reshape(self.positions.shape[0], -1)

    def _flat_tiled_any_within(self, source_flat, query_flat, radius):
        """Exact tiled ``any_within`` over flat ``(B*n)`` index subsets."""
        n = self.positions.shape[1]
        pts = self.positions.reshape(-1, 2)
        _stride, big_side = self.query._tile_geometry(radius)

        def shifted(flat_idx):
            return self.query._tile_shift(flat_idx // n, pts[flat_idx], radius)

        if self.query._tiled_backend == "kdtree":
            # Same exact query as KDTreeNeighborEngine.any_within, but the
            # tree is throwaway (one shell per round) — skip the balancing
            # passes, which dominate construction for these sizes.
            from scipy.spatial import cKDTree

            tree = cKDTree(shifted(source_flat), balanced_tree=False, compact_nodes=False)
            dist, _ = tree.query(
                shifted(query_flat), k=1, distance_upper_bound=radius * (1 + 1e-12)
            )
            return np.isfinite(dist)
        engine = _BACKENDS[self.query._tiled_backend](big_side)
        return engine.any_within(shifted(source_flat), shifted(query_flat), radius)

    def _cells_any_within(self, source_mask, query_mask, radius):
        """Cell-cover ``any_within`` (see :class:`BatchNeighborQuery`);
        returns None when the cover grid is unavailable."""
        info = self._cells_for(radius)
        if info is None:
            return None
        gid, m = info
        batch, n = gid.shape
        cells = batch * m * m
        divisor = self.query._COVER_DIVISOR
        # A source within Chebyshev cell distance reach_sure is certainly a
        # hit: the farthest pair of points in such cells is
        # (reach_sure + 1) * sqrt(2) buckets < radius apart.
        reach_sure = int(divisor / math.sqrt(2.0)) - 1
        # No source within Chebyshev distance reach_possible certainly
        # means no hit: cells further apart leave a gap > divisor buckets
        # == radius.
        reach_possible = int(divisor) + 1

        gid_flat = gid.reshape(-1)
        hits = np.zeros(batch * n, dtype=bool)
        query_flat = np.nonzero(query_mask.reshape(-1))[0]
        if query_flat.size == 0:
            return hits.reshape(batch, n)
        source_flat = np.nonzero(source_mask.reshape(-1))[0]
        if source_flat.size == 0:
            return hits.reshape(batch, n)
        q_gid = gid_flat[query_flat]
        s_gid = gid_flat[source_flat]

        # Frontier pruning: a source farther than reach_possible cells from
        # every query-occupied cell can neither hit a query nor change any
        # certainty read at a query cell — drop it before binning, so late
        # flooding rounds (informed ~ n, queries few) cost O(frontier)
        # instead of O(n) in every source-sized pass below.  The drop is
        # exact, so it is applied only in the source-heavy regime where the
        # shell test costs less than it saves; in query-heavy rounds the
        # unresolved-shell restriction below bounds the exact-check work
        # just as tightly without the extra dilation.
        pruned = False
        if self.query.prune and source_flat.size > query_flat.size:
            q_occ = np.zeros(cells, dtype=bool)
            q_occ[q_gid] = True
            near_queries = _dilate(q_occ.reshape(batch, m, m), reach_possible).reshape(-1)
            keep = near_queries[s_gid]
            source_flat = source_flat[keep]
            s_gid = s_gid[keep]
            pruned = True
            if source_flat.size == 0:
                return hits.reshape(batch, n)

        src_occ = np.zeros(cells, dtype=bool)
        src_occ[s_gid] = True
        occ = src_occ.reshape(batch, m, m)
        if reach_sure >= 1:
            sure = _dilate(occ, reach_sure)
        else:
            # Coarse grids (divisor in [sqrt(5), 2*sqrt(2))): the cross
            # neighborhood (own + edge-adjacent cells, diameter
            # sqrt(5) buckets <= radius) beats the bare own-cell box.
            sure = occ.copy()
            sure[:, 1:, :] |= occ[:, :-1, :]
            sure[:, :-1, :] |= occ[:, 1:, :]
            sure[:, :, 1:] |= occ[:, :, :-1]
            sure[:, :, :-1] |= occ[:, :, 1:]
        sure_q = sure.reshape(-1)[q_gid]
        hits[query_flat[sure_q]] = True
        possible = _dilate(occ, reach_possible).reshape(-1)
        ambiguous = ~sure_q & possible[q_gid]
        unresolved_flat = query_flat[ambiguous]
        if unresolved_flat.size:
            # Exact distances for the thin shell between the certainties,
            # against the sources near the shell's cells only.  After a
            # shell prune, every surviving source is already within
            # reach_possible of a query cell — one more dilation to
            # restrict to the *unresolved* cells rarely pays for itself.
            if pruned:
                near_source_flat = source_flat
            else:
                u_occ = np.zeros(cells, dtype=bool)
                u_occ[q_gid[ambiguous]] = True
                near = _dilate(u_occ.reshape(batch, m, m), reach_possible).reshape(-1)
                near_source_flat = source_flat[near[s_gid]]
            if near_source_flat.size:
                hit = self._flat_tiled_any_within(near_source_flat, unresolved_flat, radius)
                hits[unresolved_flat[hit]] = True
        return hits.reshape(batch, n)

    def any_within(self, source_mask, query_mask, radius: float) -> np.ndarray:
        """Per-replica infection test; see :meth:`BatchNeighborQuery.any_within`."""
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        source_mask, query_mask = self._check_masks(source_mask, query_mask)
        if self.query.backend == "auto":
            # Compiled tier (when a run activated it): one fused
            # grid-build + 3x3-scan pass over the exact predicate —
            # bit-identical to the strategies below for any scan order.
            kernel = get_kernel("batch_any_within")
            if kernel is not None:
                result = kernel(
                    self.positions, source_mask, query_mask, radius, self.query.side
                )
                if result is not None:
                    return result
        if self.query.backend in ("auto", "cells"):
            result = self._cells_any_within(source_mask, query_mask, radius)
            if result is not None:
                return result
        return self._tiled("any_within", source_mask, query_mask, radius)

    def count_within(self, source_mask, query_mask, radius: float) -> np.ndarray:
        """Per-replica occupancy counts; see :meth:`BatchNeighborQuery.count_within`."""
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        source_mask, query_mask = self._check_masks(source_mask, query_mask)
        if self.query._tiled_backend == "kdtree":
            # Throwaway per-round tree: the fast-build flags beat the
            # balanced build the generic tiled path would pay (the tree
            # serves exactly one counting pass).
            batch, n = source_mask.shape
            source_flat = np.nonzero(source_mask.reshape(-1))[0]
            query_flat = np.nonzero(query_mask.reshape(-1))[0]
            counts = np.zeros(batch * n, dtype=np.intp)
            if source_flat.size and query_flat.size:
                from scipy.spatial import cKDTree

                shifted, _big_side = self._shifted_for(radius)
                tree = cKDTree(
                    shifted[source_flat], balanced_tree=False, compact_nodes=False
                )
                counts[query_flat] = tree.query_ball_point(
                    shifted[query_flat], r=radius, return_length=True
                )
            return counts.reshape(batch, n)
        return self._tiled("count_within", source_mask, query_mask, radius)

    def contacts_within(self, source_mask, query_mask, radius: float) -> tuple:
        """Per-replica bipartite (source, query) contacts within ``radius``.

        The batched counterpart of
        :meth:`BoundSnapshot.contacts_within` — one tiled dual-tree (or
        grid-candidate) pass materializes every replica's cross contacts
        at once; cross-replica contacts are geometrically impossible.
        The neighbor-sampling protocols call it with the informed mask on
        one side and the uninformed mask on the other, so the result is
        the informed/uninformed **cut** — far smaller than the full
        contact list at both ends of a run.

        Returns:
            ``(replica, source, query)`` intp agent-index arrays of equal
            length, in unspecified order.
        """
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        source_mask, query_mask = self._check_masks(source_mask, query_mask)
        if self.query.backend == "auto":
            # Compiled tier: enumerate the exact cut contacts directly
            # (order unspecified, like every backend below — the sampling
            # protocols canonicalize by sorting on unique keys).
            kernel = get_kernel("batch_contacts")
            if kernel is not None:
                result = kernel(
                    self.positions, source_mask, query_mask, radius, self.query.side
                )
                if result is not None:
                    return result
        n = self.positions.shape[1]
        empty = (np.empty(0, dtype=np.intp),) * 3
        source_flat = np.nonzero(source_mask.reshape(-1))[0]
        query_flat = np.nonzero(query_mask.reshape(-1))[0]
        if source_flat.size == 0 or query_flat.size == 0:
            return empty
        shifted, _big_side = self._shifted_for(radius)
        shifted_s = shifted[source_flat]
        shifted_q = shifted[query_flat]
        if self.query._tiled_backend == "kdtree":
            from scipy.spatial import cKDTree

            source_tree = cKDTree(shifted_s, balanced_tree=False, compact_nodes=False)
            query_tree = cKDTree(shifted_q, balanced_tree=False, compact_nodes=False)
            hits = source_tree.sparse_distance_matrix(
                query_tree, max_distance=radius, output_type="ndarray"
            )
            s_sel = source_flat[hits["i"]]
            q_sel = query_flat[hits["j"]]
        else:
            _stride, big_side = self.query._tile_geometry(radius)
            cell = max(radius, big_side / 512.0)
            index = GridIndex(big_side, cell)
            index.build(shifted_s)
            qidx, pidx = index._candidate_arrays(shifted_q, radius)
            if qidx.size == 0:
                return empty
            diff = shifted_q[qidx] - shifted_s[pidx]
            hit = np.sum(diff * diff, axis=1) <= radius * radius
            s_sel = source_flat[pidx[hit]]
            q_sel = query_flat[qidx[hit]]
        if s_sel.size == 0:
            return empty
        return s_sel // n, s_sel % n, q_sel % n

    def pairs_within(self, radius: float, rows=None) -> tuple:
        """Per-replica disk-graph edges of the snapshot.

        The batched counterpart of
        :meth:`NeighborEngine.pairs_within`, for callers that need every
        replica's full edge list (disk-graph statistics, contact traces)
        in one tiled engine call — tiles are separated by ``2 * radius``,
        so cross-replica pairs are geometrically impossible.  The
        neighbor-sampling protocols do **not** use it (they materialize
        only the informed/uninformed cut via :meth:`contacts_within`).
        The edge *order* is the backend's traversal order; callers that
        consume randomness positionally must canonicalize it themselves.

        Args:
            radius: query radius.
            rows: optional replica indices to restrict the query to (e.g.
                the still-active replicas); others are skipped entirely.

        Returns:
            ``(replica, i, j)`` intp arrays of equal length, ``i < j``,
            in unspecified order.
        """
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        batch, n, _ = self.positions.shape
        if rows is None:
            subset = self.positions
            row_ids = np.arange(batch, dtype=np.intp)
        else:
            row_ids = np.asarray(rows, dtype=np.intp)
            subset = self.positions[row_ids]
        empty = (np.empty(0, dtype=np.intp),) * 3
        if row_ids.size == 0:
            return empty
        flat = subset.reshape(-1, 2)
        shifted = self.query._tile_shift(np.repeat(row_ids, n), flat, radius)
        if self.query._tiled_backend == "kdtree":
            # Throwaway tree, one per round: skip the balancing passes
            # (same trick as the exact-shell fall-through above).
            from scipy.spatial import cKDTree

            tree = cKDTree(shifted, balanced_tree=False, compact_nodes=False)
            pairs = tree.query_pairs(r=radius, output_type="ndarray")
            pairs = pairs.astype(np.intp, copy=False)
        else:
            _stride, big_side = self.query._tile_geometry(radius)
            pairs = _BACKENDS[self.query._tiled_backend](big_side).pairs_within(
                shifted, radius
            )
        if pairs.shape[0] == 0:
            return empty
        # Every backend returns i < j in the flat index space; endpoints
        # share a replica (tile separation > radius), so local i < j too.
        position = pairs[:, 0] // n
        return row_ids[position], pairs[:, 0] % n, pairs[:, 1] % n


class BatchNeighborQuery:
    """Per-replica radius queries over a ``(B, n, 2)`` position tensor.

    Two strategies, both exact:

    * **tiling** (explicit ``grid``/``kdtree``/``brute`` backends): replica
      ``b``'s points are shifted into tile ``b`` of a virtual
      ``rows x cols`` tile sheet (``cols = ceil(sqrt(B))``, keeping the grid
      backend's cell count ``O(B)``).  Adjacent tiles are separated by
      ``2 * radius``, strictly more than the query radius, hence one engine
      call over the shifted union answers all replicas at once and
      cross-replica pairs can never be within range.

    * **cell cover** (``"cells"``, the ``"auto"`` default for
      :meth:`any_within`): per-replica occupancy grids with bucket side
      ``radius / (2 sqrt2)`` resolve most queries by occupancy logic
      alone — a source anywhere in the query's 3x3 cell box is
      *certainly* within ``radius`` (the farthest pair of points in that
      box is exactly ``2 sqrt2`` buckets apart), while no source within
      Chebyshev distance 3 *certainly* means no hit (the gap is at least
      3 buckets ``> radius``).  Only queries in the thin shell between
      the two certainties fall through to an exact tiled query against
      the nearby sources.  With ``prune`` (default), informed sources outside the
      ``reach``-dilated shell of the query-occupied cells are dropped
      before any binning — exact, because such sources can neither hit a
      query nor change a certainty read at a query cell.  With
      ``incremental`` (default), the per-agent cell assignment persists
      across rounds in an
      :class:`~repro.geometry.incremental.IncrementalBatchOccupancy`
      refreshed from displacement deltas.

    Strategies agree except possibly at distances within floating-point
    rounding of ``radius`` itself — the same ulp-level boundary slack the
    scalar backends already have among themselves (the KD-tree engine
    applies a ``1e-12`` relative tolerance where grid and brute use exact
    ``<=``), and a measure-zero event for simulation-driven positions.

    Args:
        side: side length of each replica's square region.
        batch_size: number of replicas ``B``.
        backend: ``"grid"``, ``"kdtree"``, ``"brute"``, ``"cells"``, or
            ``"auto"`` (cell cover for ``any_within``, best tiled engine
            otherwise).
        incremental: reuse per-agent cell assignments across rounds
            (False re-derives them per call — the pre-incremental
            behaviour, kept for parity sweeps and the bench baseline).
        prune: frontier source pruning in the cell-cover kernel (False
            keeps every informed source, as before this subsystem).
    """

    def __init__(
        self,
        side: float,
        batch_size: int,
        backend: str = "auto",
        incremental: bool = True,
        prune: bool = True,
    ):
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.side = float(side)
        self.batch_size = int(batch_size)
        if backend not in ("auto", "cells") and backend not in _BACKENDS:
            raise ValueError(
                f"unknown neighbor backend {backend!r}; expected one of "
                f"{sorted(_BACKENDS) + ['cells']} or 'auto'"
            )
        self.backend = backend
        self.incremental = bool(incremental)
        self.prune = bool(prune)
        self._tiled_backend = backend
        if backend in ("auto", "cells"):
            self._tiled_backend = "kdtree" if "kdtree" in available_backends() else "grid"
        self._cols = int(math.ceil(math.sqrt(self.batch_size)))
        self._rows = int(math.ceil(self.batch_size / self._cols))
        self._occupancies: dict = {}

    #: Above this many occupancy-grid cells the cell cover falls back to
    #: tiling (tiny radii would make the per-replica grids enormous).
    _MAX_COVER_CELLS = 4_000_000

    #: Occupancy-grid resolution: bucket side = radius / _COVER_DIVISOR.
    #: Finer grids narrow the indeterminate shell (width ``O(bucket)``)
    #: that needs exact distance checks, at ``O(B * m^2)`` occupancy cost.
    #: 2*sqrt(2) makes the full 3x3 box a *certain* hit (farthest pair
    #: exactly ``2 sqrt2`` buckets == radius) — measurably better than the
    #: seed's sqrt(5) cross neighborhood now that the grid passes run as
    #: cheap boolean dilations (see ``repro bench``).
    _COVER_DIVISOR = 2.0 * math.sqrt(2.0)

    def _occupancy_for(self, cell: float, m: int) -> IncrementalBatchOccupancy:
        occupancy = self._occupancies.get(cell)
        if occupancy is None:
            if len(self._occupancies) >= 4:  # defensive: unbounded radii churn
                self._occupancies.clear()
            occupancy = IncrementalBatchOccupancy(self.side, self.batch_size, cell)
            self._occupancies[cell] = occupancy
        return occupancy

    def _tile_geometry(self, radius: float) -> tuple:
        """``(stride, big_side)`` of the virtual tile sheet for ``radius``.

        The single definition of the tiling layout — every path that
        shifts points into tiles (full snapshots, flat index subsets)
        must derive its geometry from here.
        """
        stride = self.side + 2.0 * radius
        return stride, max(self._cols, self._rows) * stride

    def _tile_shift(self, replica: np.ndarray, points: np.ndarray, radius: float) -> np.ndarray:
        """Shift ``points`` (one row per entry of ``replica``) into tiles."""
        stride, _big_side = self._tile_geometry(radius)
        out = points.copy()
        out[:, 0] += (replica % self._cols) * stride
        out[:, 1] += (replica // self._cols) * stride
        return out

    def _shift(self, positions: np.ndarray, radius: float) -> tuple:
        """Translate each replica into its tile; returns ``(flat, big_side)``."""
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 3 or positions.shape[2] != 2:
            raise ValueError(f"positions must have shape (B, n, 2), got {positions.shape}")
        batch = positions.shape[0]
        if batch != self.batch_size:
            raise ValueError(f"expected {self.batch_size} replicas, got {batch}")
        stride, big_side = self._tile_geometry(radius)
        replica = np.arange(batch)
        offsets = np.stack(
            [(replica % self._cols) * stride, (replica // self._cols) * stride], axis=1
        )
        shifted = positions + offsets[:, None, :]
        return shifted.reshape(-1, 2), big_side

    def bind(self, positions, rows=None) -> BatchBoundQuery:
        """Freeze one ``(B, n, 2)`` snapshot for repeated queries.

        Args:
            positions: the snapshot tensor.
            rows: optional replica indices that may have moved since the
                previous ``bind`` (e.g. the active replicas); passed to the
                incremental occupancy so frozen replicas cost nothing.
        """
        return BatchBoundQuery(self, positions, rows=rows)

    def any_within(self, positions, source_mask, query_mask, radius: float) -> np.ndarray:
        """Per-replica infection test.

        Args:
            positions: ``(B, n, 2)`` replica position tensor.
            source_mask: ``(B, n)`` bool — transmitting points, per replica.
            query_mask: ``(B, n)`` bool — listening points, per replica.
            radius: query radius.

        Returns:
            ``(B, n)`` bool mask — True where a query point of replica ``b``
            has a source point *of the same replica* within ``radius``
            (always False outside ``query_mask``).
        """
        return self.bind(positions).any_within(source_mask, query_mask, radius)

    def count_within(self, positions, source_mask, query_mask, radius: float) -> np.ndarray:
        """Per-replica occupancy counts; same contract as :meth:`any_within`
        with an ``(B, n)`` intp result (0 outside ``query_mask``)."""
        return self.bind(positions).count_within(source_mask, query_mask, radius)


_BACKENDS = {
    "grid": GridNeighborEngine,
    "kdtree": KDTreeNeighborEngine,
    "brute": BruteForceNeighborEngine,
}

_AVAILABLE_BACKENDS = None


def available_backends(kind: str = "neighbors") -> list:
    """Names of backends importable in this environment.

    Args:
        kind: ``"neighbors"`` (default) lists the neighbor-engine
            backends; ``"kernels"`` lists the kernel tiers backing the
            ``kernels`` config knob — compiled providers first (``numba``
            and/or ``cext``, probed once per process with the
            ``REPRO_NO_NUMBA=1`` / ``REPRO_NO_CEXT=1`` escape hatches),
            then the always-available ``numpy``.

    Every probe runs once per process and is cached — constructing
    engines and batch queries in a hot loop must not re-attempt imports
    (or compiler invocations) every time.
    """
    if kind == "kernels":
        from repro.kernels import available_kernel_backends

        return available_kernel_backends()
    if kind != "neighbors":
        raise ValueError(f"unknown backend kind {kind!r}; expected 'neighbors' or 'kernels'")
    global _AVAILABLE_BACKENDS
    if _AVAILABLE_BACKENDS is None:
        names = ["grid", "brute"]
        try:
            import scipy.spatial  # noqa: F401

            names.insert(0, "kdtree")
        except ImportError:  # pragma: no cover - depends on environment
            pass
        _AVAILABLE_BACKENDS = names
    return list(_AVAILABLE_BACKENDS)


def make_engine(backend: str, side: float, **options) -> NeighborEngine:
    """Construct a neighbor engine by name.

    Args:
        backend: ``"grid"``, ``"kdtree"``, ``"brute"``, or ``"auto"``
            (kdtree if scipy is available, else grid).
        side: side length of the square region.
        options: engine tuning knobs; currently ``incremental`` and
            ``cell_size`` (grid engine only — silently ignored by
            backends they do not apply to, so one options dict can be
            threaded through backend-agnostic code).
    """
    unknown = set(options) - {"incremental", "cell_size"}
    if unknown:
        raise ValueError(f"unknown engine options: {sorted(unknown)}")
    if backend == "auto":
        backend = "kdtree" if "kdtree" in available_backends() else "grid"
    if backend not in _BACKENDS:
        raise ValueError(f"unknown neighbor backend {backend!r}; expected one of {sorted(_BACKENDS)} or 'auto'")
    if backend == "grid":
        return GridNeighborEngine(
            side,
            cell_size=options.get("cell_size"),
            incremental=options.get("incremental", True),
        )
    return _BACKENDS[backend](side)
