"""Neighbor engines: a uniform interface over spatial indexes.

The simulation core only needs three primitives per snapshot:

* ``any_within(sources, queries, r)`` — which query points have a source
  point within Euclidean distance ``r`` (flooding's infection test);
* ``count_within(...)`` — occupancy counts (density condition, Lemma 7);
* ``pairs_within(points, r)`` — all edges of the disk graph ``G_t``.

Two interchangeable backends implement them:

* :class:`GridNeighborEngine` — the pure-numpy bucket grid of
  :mod:`repro.geometry.grid` (no dependencies beyond numpy);
* :class:`KDTreeNeighborEngine` — scipy's cKDTree, typically faster for
  large ``n``.

Use :func:`make_engine` to construct one by name; ``"auto"`` picks the
KD-tree when scipy is importable and falls back to the grid otherwise.

The batch simulation engine (DESIGN.md, "Batched execution") answers the
per-replica queries of **B independent trials with one engine call** through
:class:`BatchNeighborQuery`: each replica's points are translated into a
disjoint tile of a larger virtual square, tiles separated by more than the
query radius, so a single spatial index over the union can never report a
cross-replica hit.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.grid import GridIndex
from repro.geometry.points import as_points

__all__ = [
    "NeighborEngine",
    "GridNeighborEngine",
    "KDTreeNeighborEngine",
    "BruteForceNeighborEngine",
    "BatchNeighborQuery",
    "make_engine",
    "available_backends",
]


class NeighborEngine:
    """Interface for radius-based neighbor queries on a square region."""

    name = "abstract"

    def __init__(self, side: float):
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        self.side = float(side)

    def any_within(self, sources, queries, radius: float) -> np.ndarray:
        """Mask over ``queries``: has >= 1 point of ``sources`` within ``radius``."""
        raise NotImplementedError

    def count_within(self, sources, queries, radius: float) -> np.ndarray:
        """Per-query count of ``sources`` points within ``radius``."""
        raise NotImplementedError

    def pairs_within(self, points, radius: float) -> np.ndarray:
        """All unordered pairs of ``points`` within ``radius``; shape ``(k, 2)``."""
        raise NotImplementedError


class GridNeighborEngine(NeighborEngine):
    """Bucket-grid backend (pure numpy)."""

    name = "grid"

    def __init__(self, side: float, cell_size: float = None):
        super().__init__(side)
        self._cell_size = cell_size

    def _index(self, points, radius: float) -> GridIndex:
        cell = self._cell_size if self._cell_size is not None else max(radius, self.side / 512.0)
        index = GridIndex(self.side, cell)
        index.build(points)
        return index

    def any_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=bool)
        return self._index(sources, radius).any_within(queries, radius)

    def count_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=np.intp)
        return self._index(sources, radius).count_within(queries, radius)

    def pairs_within(self, points, radius: float) -> np.ndarray:
        points = as_points(points)
        if points.shape[0] == 0:
            return np.empty((0, 2), dtype=np.intp)
        return self._index(points, radius).pairs_within(radius)


class KDTreeNeighborEngine(NeighborEngine):
    """scipy cKDTree backend.

    Raises:
        ImportError: when scipy is not installed; use ``make_engine("auto")``
            to fall back gracefully.
    """

    name = "kdtree"

    def __init__(self, side: float):
        super().__init__(side)
        from scipy.spatial import cKDTree  # noqa: F401 - import check

        self._cKDTree = cKDTree

    def any_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0 or queries.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=bool)
        tree = self._cKDTree(sources)
        dist, _ = tree.query(queries, k=1, distance_upper_bound=radius * (1 + 1e-12))
        return np.isfinite(dist)

    def count_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0 or queries.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=np.intp)
        tree = self._cKDTree(sources)
        counts = tree.query_ball_point(queries, r=radius, return_length=True)
        return np.asarray(counts, dtype=np.intp)

    def pairs_within(self, points, radius: float) -> np.ndarray:
        points = as_points(points)
        if points.shape[0] == 0:
            return np.empty((0, 2), dtype=np.intp)
        tree = self._cKDTree(points)
        pairs = tree.query_pairs(r=radius, output_type="ndarray")
        return pairs.astype(np.intp, copy=False)


class BruteForceNeighborEngine(NeighborEngine):
    """O(n*m) reference implementation used to validate the real engines."""

    name = "brute"

    def any_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=bool)
        diff = queries[:, None, :] - sources[None, :, :]
        dist2 = np.sum(diff * diff, axis=-1)
        return np.any(dist2 <= radius * radius, axis=1)

    def count_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=np.intp)
        diff = queries[:, None, :] - sources[None, :, :]
        dist2 = np.sum(diff * diff, axis=-1)
        return np.sum(dist2 <= radius * radius, axis=1).astype(np.intp)

    def pairs_within(self, points, radius: float) -> np.ndarray:
        points = as_points(points)
        n = points.shape[0]
        if n == 0:
            return np.empty((0, 2), dtype=np.intp)
        diff = points[:, None, :] - points[None, :, :]
        dist2 = np.sum(diff * diff, axis=-1)
        i, j = np.nonzero(np.triu(dist2 <= radius * radius, k=1))
        return np.stack([i, j], axis=1).astype(np.intp)


def _box_filter(values: np.ndarray, reach: int, axis: int) -> np.ndarray:
    """Sliding-window sum of width ``2*reach+1`` (clipped) along one axis.

    Implemented as a cumulative sum plus two ``take`` calls (contiguous
    row/column copies — no per-element fancy indexing), so a 2-D box query
    over a ``(B, m, m)`` stack costs a handful of vectorized passes
    independent of ``reach``.
    """
    m = values.shape[axis]
    summed = np.cumsum(values, axis=axis)
    idx = np.arange(m)
    upper = np.take(summed, np.minimum(idx + reach, m - 1), axis=axis)
    lower = np.take(summed, np.maximum(idx - reach - 1, 0), axis=axis)
    edge_shape = [1, 1, 1]
    edge_shape[axis] = m
    at_edge = (idx - reach - 1 < 0).reshape(edge_shape)
    return upper - np.where(at_edge, 0, lower)


def _box_any(counts: np.ndarray, reach: int) -> np.ndarray:
    """Per-cell: does the ``(2*reach+1)^2`` window hold any count? (clipped)."""
    return _box_filter(_box_filter(counts, reach, 1), reach, 2) > 0


class BatchNeighborQuery:
    """Per-replica radius queries over a ``(B, n, 2)`` position tensor.

    Two strategies, both exact:

    * **tiling** (explicit ``grid``/``kdtree``/``brute`` backends): replica
      ``b``'s points are shifted into tile ``b`` of a virtual
      ``rows x cols`` tile sheet (``cols = ceil(sqrt(B))``, keeping the grid
      backend's cell count ``O(B)``).  Adjacent tiles are separated by
      ``2 * radius``, strictly more than the query radius, hence one engine
      call over the shifted union answers all replicas at once and
      cross-replica pairs can never be within range.

    * **cell cover** (``"cells"``, the ``"auto"`` default for
      :meth:`any_within`): per-replica occupancy grids with bucket side
      ``radius / sqrt(5)`` resolve most queries by occupancy logic alone —
      a source in the query's own or edge-adjacent cell is *certainly*
      within ``radius`` (the diameter of that cross neighborhood is
      ``sqrt(5)`` buckets), while no source within Chebyshev distance 3
      *certainly* means no hit (the gap is at least 3 buckets
      ``> radius``).  Only queries in the thin shell between the two
      certainties fall through to an exact tiled query against the nearby
      sources.  This turns the flooding infection test from per-point tree
      traversals into a handful of vectorized passes over the batch.

    Strategies agree except possibly at distances within floating-point
    rounding of ``radius`` itself — the same ulp-level boundary slack the
    scalar backends already have among themselves (the KD-tree engine
    applies a ``1e-12`` relative tolerance where grid and brute use exact
    ``<=``), and a measure-zero event for simulation-driven positions.

    Args:
        side: side length of each replica's square region.
        batch_size: number of replicas ``B``.
        backend: ``"grid"``, ``"kdtree"``, ``"brute"``, ``"cells"``, or
            ``"auto"`` (cell cover for ``any_within``, best tiled engine
            otherwise).
    """

    def __init__(self, side: float, batch_size: int, backend: str = "auto"):
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.side = float(side)
        self.batch_size = int(batch_size)
        if backend not in ("auto", "cells") and backend not in _BACKENDS:
            raise ValueError(
                f"unknown neighbor backend {backend!r}; expected one of "
                f"{sorted(_BACKENDS) + ['cells']} or 'auto'"
            )
        self.backend = backend
        self._tiled_backend = backend
        if backend in ("auto", "cells"):
            self._tiled_backend = "kdtree" if "kdtree" in available_backends() else "grid"
        self._cols = int(math.ceil(math.sqrt(self.batch_size)))
        self._rows = int(math.ceil(self.batch_size / self._cols))

    #: Above this many occupancy-grid cells the cell cover falls back to
    #: tiling (tiny radii would make the per-replica grids enormous).
    _MAX_COVER_CELLS = 4_000_000

    def _shift(self, positions: np.ndarray, radius: float) -> tuple:
        """Translate each replica into its tile; returns ``(flat, big_side)``."""
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 3 or positions.shape[2] != 2:
            raise ValueError(f"positions must have shape (B, n, 2), got {positions.shape}")
        batch = positions.shape[0]
        if batch != self.batch_size:
            raise ValueError(f"expected {self.batch_size} replicas, got {batch}")
        stride = self.side + 2.0 * radius
        replica = np.arange(batch)
        offsets = np.stack(
            [(replica % self._cols) * stride, (replica // self._cols) * stride], axis=1
        )
        shifted = positions + offsets[:, None, :]
        big_side = max(self._cols, self._rows) * stride
        return shifted.reshape(-1, 2), big_side

    def _masked_query(self, method, positions, source_mask, query_mask, radius):
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        flat, big_side = self._shift(positions, radius)
        source_mask = np.asarray(source_mask, dtype=bool).reshape(-1)
        query_mask = np.asarray(query_mask, dtype=bool).reshape(-1)
        if source_mask.shape != (flat.shape[0],) or query_mask.shape != (flat.shape[0],):
            raise ValueError("masks must have shape (B, n) matching the positions")
        engine = _BACKENDS[self._tiled_backend](big_side)
        out = getattr(engine, method)(flat[source_mask], flat[query_mask], radius)
        result_dtype = bool if method == "any_within" else np.intp
        full = np.zeros(flat.shape[0], dtype=result_dtype)
        full[query_mask] = out
        batch = np.asarray(positions).shape[0]
        return full.reshape(batch, -1)

    #: Occupancy-grid resolution: bucket side = radius / _COVER_DIVISOR.
    #: Finer grids narrow the indeterminate shell (width ``O(bucket)``)
    #: that needs exact distance checks, at ``O(B * m^2)`` occupancy cost.
    _COVER_DIVISOR = math.sqrt(5.0)

    def _cells_any_within(self, positions, source_mask, query_mask, radius):
        """Cell-cover ``any_within`` (see class docstring); None on fallback."""
        divisor = self._COVER_DIVISOR
        cell = radius / divisor
        m = max(1, int(math.ceil(self.side / cell)))
        batch, n, _ = positions.shape
        if batch * m * m > self._MAX_COVER_CELLS:
            return None
        # A source within Chebyshev cell distance reach_sure is certainly a
        # hit: the farthest pair of points in such cells is
        # (reach_sure + 1) * sqrt(2) buckets < radius apart.
        reach_sure = int(divisor / math.sqrt(2.0)) - 1
        # No source within Chebyshev distance reach_possible certainly
        # means no hit: cells further apart leave a gap > divisor buckets
        # == radius.
        reach_possible = int(divisor) + 1
        source_mask = np.asarray(source_mask, dtype=bool)
        query_mask = np.asarray(query_mask, dtype=bool)
        if source_mask.shape != (batch, n) or query_mask.shape != (batch, n):
            raise ValueError("masks must have shape (B, n) matching the positions")
        ij = (positions * (1.0 / cell)).astype(np.int64)
        np.clip(ij, 0, m - 1, out=ij)
        cid = ij[..., 0] * m + ij[..., 1]
        gid = cid + np.arange(batch, dtype=np.int64)[:, None] * (m * m)
        src_counts = np.bincount(
            gid[source_mask], minlength=batch * m * m
        ).reshape(batch, m, m)
        if reach_sure >= 1:
            sure = _box_any(src_counts, reach_sure)
        else:
            # Coarse grids (divisor in [sqrt(5), 2*sqrt(2))): the cross
            # neighborhood (own + edge-adjacent cells, diameter
            # sqrt(5) buckets <= radius) beats the bare own-cell box.
            occ = src_counts > 0
            sure = occ.copy()
            sure[:, 1:, :] |= occ[:, :-1, :]
            sure[:, :-1, :] |= occ[:, 1:, :]
            sure[:, :, 1:] |= occ[:, :, :-1]
            sure[:, :, :-1] |= occ[:, :, 1:]
        possible = _box_any(src_counts, reach_possible)
        rows = np.arange(batch)[:, None]
        sure_at = sure.reshape(batch, m * m)[rows, cid]
        hits = query_mask & sure_at
        unresolved = query_mask & ~sure_at & possible.reshape(batch, m * m)[rows, cid]
        if unresolved.any():
            # Exact distances for the thin shell between the certainties,
            # against the sources near the shell's cells only.
            u_counts = np.bincount(
                gid[unresolved], minlength=batch * m * m
            ).reshape(batch, m, m)
            near = _box_any(u_counts, reach_possible).reshape(batch, m * m)
            near_sources = source_mask & near[rows, cid]
            hits |= self._subset_any_within(positions, near_sources, unresolved, radius)
        return hits

    def _subset_any_within(self, positions, source_mask, query_mask, radius):
        """Tiled exact ``any_within`` gathering only the masked points."""
        out = np.zeros(query_mask.shape, dtype=bool)
        src_b, src_i = np.nonzero(source_mask)
        q_b, q_i = np.nonzero(query_mask)
        if q_b.size == 0 or src_b.size == 0:
            return out
        stride = self.side + 2.0 * radius

        def shift(replica, points):
            points = points.copy()
            points[:, 0] += (replica % self._cols) * stride
            points[:, 1] += (replica // self._cols) * stride
            return points

        big_side = max(self._cols, self._rows) * stride
        engine = _BACKENDS[self._tiled_backend](big_side)
        hit = engine.any_within(
            shift(src_b, positions[src_b, src_i]),
            shift(q_b, positions[q_b, q_i]),
            radius,
        )
        out[q_b[hit], q_i[hit]] = True
        return out

    def any_within(self, positions, source_mask, query_mask, radius: float) -> np.ndarray:
        """Per-replica infection test.

        Args:
            positions: ``(B, n, 2)`` replica position tensor.
            source_mask: ``(B, n)`` bool — transmitting points, per replica.
            query_mask: ``(B, n)`` bool — listening points, per replica.
            radius: query radius.

        Returns:
            ``(B, n)`` bool mask — True where a query point of replica ``b``
            has a source point *of the same replica* within ``radius``
            (always False outside ``query_mask``).
        """
        if self.backend in ("auto", "cells"):
            if radius <= 0:
                raise ValueError(f"radius must be positive, got {radius}")
            positions = np.asarray(positions, dtype=np.float64)
            if positions.ndim != 3 or positions.shape[2] != 2:
                raise ValueError(f"positions must have shape (B, n, 2), got {positions.shape}")
            if positions.shape[0] != self.batch_size:
                raise ValueError(f"expected {self.batch_size} replicas, got {positions.shape[0]}")
            result = self._cells_any_within(positions, source_mask, query_mask, radius)
            if result is not None:
                return result
        return self._masked_query("any_within", positions, source_mask, query_mask, radius)

    def count_within(self, positions, source_mask, query_mask, radius: float) -> np.ndarray:
        """Per-replica occupancy counts; same contract as :meth:`any_within`
        with an ``(B, n)`` intp result (0 outside ``query_mask``)."""
        return self._masked_query("count_within", positions, source_mask, query_mask, radius)


_BACKENDS = {
    "grid": GridNeighborEngine,
    "kdtree": KDTreeNeighborEngine,
    "brute": BruteForceNeighborEngine,
}


def available_backends() -> list:
    """Names of neighbor-engine backends importable in this environment."""
    names = ["grid", "brute"]
    try:
        import scipy.spatial  # noqa: F401

        names.insert(0, "kdtree")
    except ImportError:  # pragma: no cover - depends on environment
        pass
    return names


def make_engine(backend: str, side: float) -> NeighborEngine:
    """Construct a neighbor engine by name.

    Args:
        backend: ``"grid"``, ``"kdtree"``, ``"brute"``, or ``"auto"``
            (kdtree if scipy is available, else grid).
        side: side length of the square region.
    """
    if backend == "auto":
        backend = "kdtree" if "kdtree" in available_backends() else "grid"
    if backend not in _BACKENDS:
        raise ValueError(f"unknown neighbor backend {backend!r}; expected one of {sorted(_BACKENDS)} or 'auto'")
    return _BACKENDS[backend](side)
