"""Neighbor engines: a uniform interface over spatial indexes.

The simulation core only needs three primitives per snapshot:

* ``any_within(sources, queries, r)`` — which query points have a source
  point within Euclidean distance ``r`` (flooding's infection test);
* ``count_within(...)`` — occupancy counts (density condition, Lemma 7);
* ``pairs_within(points, r)`` — all edges of the disk graph ``G_t``.

Two interchangeable backends implement them:

* :class:`GridNeighborEngine` — the pure-numpy bucket grid of
  :mod:`repro.geometry.grid` (no dependencies beyond numpy);
* :class:`KDTreeNeighborEngine` — scipy's cKDTree, typically faster for
  large ``n``.

Use :func:`make_engine` to construct one by name; ``"auto"`` picks the
KD-tree when scipy is importable and falls back to the grid otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.grid import GridIndex
from repro.geometry.points import as_points

__all__ = [
    "NeighborEngine",
    "GridNeighborEngine",
    "KDTreeNeighborEngine",
    "BruteForceNeighborEngine",
    "make_engine",
    "available_backends",
]


class NeighborEngine:
    """Interface for radius-based neighbor queries on a square region."""

    name = "abstract"

    def __init__(self, side: float):
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        self.side = float(side)

    def any_within(self, sources, queries, radius: float) -> np.ndarray:
        """Mask over ``queries``: has >= 1 point of ``sources`` within ``radius``."""
        raise NotImplementedError

    def count_within(self, sources, queries, radius: float) -> np.ndarray:
        """Per-query count of ``sources`` points within ``radius``."""
        raise NotImplementedError

    def pairs_within(self, points, radius: float) -> np.ndarray:
        """All unordered pairs of ``points`` within ``radius``; shape ``(k, 2)``."""
        raise NotImplementedError


class GridNeighborEngine(NeighborEngine):
    """Bucket-grid backend (pure numpy)."""

    name = "grid"

    def __init__(self, side: float, cell_size: float = None):
        super().__init__(side)
        self._cell_size = cell_size

    def _index(self, points, radius: float) -> GridIndex:
        cell = self._cell_size if self._cell_size is not None else max(radius, self.side / 512.0)
        index = GridIndex(self.side, cell)
        index.build(points)
        return index

    def any_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=bool)
        return self._index(sources, radius).any_within(queries, radius)

    def count_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=np.intp)
        return self._index(sources, radius).count_within(queries, radius)

    def pairs_within(self, points, radius: float) -> np.ndarray:
        points = as_points(points)
        if points.shape[0] == 0:
            return np.empty((0, 2), dtype=np.intp)
        return self._index(points, radius).pairs_within(radius)


class KDTreeNeighborEngine(NeighborEngine):
    """scipy cKDTree backend.

    Raises:
        ImportError: when scipy is not installed; use ``make_engine("auto")``
            to fall back gracefully.
    """

    name = "kdtree"

    def __init__(self, side: float):
        super().__init__(side)
        from scipy.spatial import cKDTree  # noqa: F401 - import check

        self._cKDTree = cKDTree

    def any_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0 or queries.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=bool)
        tree = self._cKDTree(sources)
        dist, _ = tree.query(queries, k=1, distance_upper_bound=radius * (1 + 1e-12))
        return np.isfinite(dist)

    def count_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0 or queries.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=np.intp)
        tree = self._cKDTree(sources)
        counts = tree.query_ball_point(queries, r=radius, return_length=True)
        return np.asarray(counts, dtype=np.intp)

    def pairs_within(self, points, radius: float) -> np.ndarray:
        points = as_points(points)
        if points.shape[0] == 0:
            return np.empty((0, 2), dtype=np.intp)
        tree = self._cKDTree(points)
        pairs = tree.query_pairs(r=radius, output_type="ndarray")
        return pairs.astype(np.intp, copy=False)


class BruteForceNeighborEngine(NeighborEngine):
    """O(n*m) reference implementation used to validate the real engines."""

    name = "brute"

    def any_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=bool)
        diff = queries[:, None, :] - sources[None, :, :]
        dist2 = np.sum(diff * diff, axis=-1)
        return np.any(dist2 <= radius * radius, axis=1)

    def count_within(self, sources, queries, radius: float) -> np.ndarray:
        sources = as_points(sources)
        queries = as_points(queries)
        if sources.shape[0] == 0:
            return np.zeros(queries.shape[0], dtype=np.intp)
        diff = queries[:, None, :] - sources[None, :, :]
        dist2 = np.sum(diff * diff, axis=-1)
        return np.sum(dist2 <= radius * radius, axis=1).astype(np.intp)

    def pairs_within(self, points, radius: float) -> np.ndarray:
        points = as_points(points)
        n = points.shape[0]
        if n == 0:
            return np.empty((0, 2), dtype=np.intp)
        diff = points[:, None, :] - points[None, :, :]
        dist2 = np.sum(diff * diff, axis=-1)
        i, j = np.nonzero(np.triu(dist2 <= radius * radius, k=1))
        return np.stack([i, j], axis=1).astype(np.intp)


_BACKENDS = {
    "grid": GridNeighborEngine,
    "kdtree": KDTreeNeighborEngine,
    "brute": BruteForceNeighborEngine,
}


def available_backends() -> list:
    """Names of neighbor-engine backends importable in this environment."""
    names = ["grid", "brute"]
    try:
        import scipy.spatial  # noqa: F401

        names.insert(0, "kdtree")
    except ImportError:  # pragma: no cover - depends on environment
        pass
    return names


def make_engine(backend: str, side: float) -> NeighborEngine:
    """Construct a neighbor engine by name.

    Args:
        backend: ``"grid"``, ``"kdtree"``, ``"brute"``, or ``"auto"``
            (kdtree if scipy is available, else grid).
        side: side length of the square region.
    """
    if backend == "auto":
        backend = "kdtree" if "kdtree" in available_backends() else "grid"
    if backend not in _BACKENDS:
        raise ValueError(f"unknown neighbor backend {backend!r}; expected one of {sorted(_BACKENDS)} or 'auto'")
    return _BACKENDS[backend](side)
