"""Low-level random samplers used by the mobility models.

These implement the distribution shapes that show up in the MRWP stationary
analysis (Section 2 / refs [12, 13, 21, 22] of the paper):

* ``sample_uniform_square`` — way-point selection (destinations are uniform);
* ``sample_length_biased_pair`` — a pair ``(a, b) in [0, L]^2`` with density
  proportional to ``|a - b|``.  Palm calculus says a stationary trip's
  endpoints are length-biased: the probability of observing a trip is
  proportional to its duration, i.e. its Manhattan length
  ``|x1-x0| + |y1-y0|``; that L1 length splits into per-axis terms, which is
  what makes this 1-D primitive sufficient (see
  :mod:`repro.mobility.stationary`);
* ``sample_beta22`` — the ``6 x (L - x) / L^3`` marginal that appears in the
  spatial pdf of Theorem 1 (a scaled Beta(2, 2)).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sample_uniform_square",
    "sample_beta22",
    "sample_length_biased_pair",
    "sample_uniform_disk",
]


def sample_uniform_square(n: int, side: float, rng: np.random.Generator) -> np.ndarray:
    """``n`` i.i.d. uniform points on ``[0, side]^2`` (shape ``(n, 2)``)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return rng.uniform(0.0, side, size=(n, 2))


def sample_beta22(n: int, side: float, rng: np.random.Generator) -> np.ndarray:
    """``n`` samples from the pdf ``6 x (side - x) / side^3`` on ``[0, side]``.

    This is a Beta(2, 2) scaled to ``[0, side]``; it is the non-uniform
    coordinate in the mixture decomposition of Theorem 1's spatial pdf
    ``f(x, y) = (3 / L^4) * (x(L-x) + y(L-y))``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return side * rng.beta(2.0, 2.0, size=n)


def sample_length_biased_pair(n: int, side: float, rng: np.random.Generator) -> np.ndarray:
    """``n`` pairs ``(a, b)`` on ``[0, side]^2`` with density ``∝ |a - b|``.

    Implemented by rejection against the uniform proposal with acceptance
    probability ``|a - b| / side`` (worst-case acceptance rate 1/3, so the
    expected number of proposal rounds is small and bounded).

    Returns:
        array of shape ``(n, 2)`` with columns ``a`` and ``b``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    out = np.empty((n, 2), dtype=np.float64)
    filled = 0
    while filled < n:
        want = n - filled
        # Propose ~3x the deficit to keep the loop count ~O(1).
        batch = max(32, int(3.2 * want))
        a = rng.uniform(0.0, side, size=batch)
        b = rng.uniform(0.0, side, size=batch)
        accept = rng.uniform(0.0, 1.0, size=batch) * side <= np.abs(a - b)
        a = a[accept][:want]
        b = b[accept][:want]
        out[filled:filled + a.size, 0] = a
        out[filled:filled + a.size, 1] = b
        filled += a.size
    return out


def sample_uniform_disk(n: int, radius: float, rng: np.random.Generator) -> np.ndarray:
    """``n`` i.i.d. uniform points in the disk of given ``radius`` about 0.

    Used by the random-walk mobility baseline (paper refs [10, 11]), whose
    agents jump to a uniform point of the radius-``rho`` disk each step.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    r = radius * np.sqrt(rng.uniform(0.0, 1.0, size=n))
    theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
    return np.stack([r * np.cos(theta), r * np.sin(theta)], axis=1)
