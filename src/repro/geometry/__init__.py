"""Geometric substrate: points, Manhattan paths, spatial indexes, samplers.

Also the registry surface for backend selection: ``available_backends()``
lists the neighbor engines (and, with ``kind="kernels"``, the compiled
kernel providers), and ``kernel_backend()`` / ``use_kernel_tier()`` /
``kernel_tier_label()`` are re-exported from :mod:`repro.kernels` so
callers can probe and scope the compiled tier from one import.
"""

from repro.geometry.grid import GridIndex
from repro.geometry.incremental import IncrementalBatchOccupancy, IncrementalGridIndex
from repro.geometry.neighbors import (
    BatchNeighborQuery,
    BoundSnapshot,
    BruteForceNeighborEngine,
    GridNeighborEngine,
    KDTreeNeighborEngine,
    NeighborEngine,
    available_backends,
    make_engine,
)
from repro.geometry.paths import (
    HORIZONTAL_FIRST,
    VERTICAL_FIRST,
    ManhattanPath,
    choose_corners,
    leg_lengths,
    path_corner,
    position_along_path,
)
from repro.geometry.points import (
    as_points,
    chebyshev_distance,
    clamp_to_square,
    corner_distance,
    euclidean_distance,
    in_square,
    manhattan_distance,
    manhattan_distance_to_box,
    pairwise_euclidean,
    pairwise_manhattan,
)
from repro.geometry.sampling import (
    sample_beta22,
    sample_length_biased_pair,
    sample_uniform_disk,
    sample_uniform_square,
)
from repro.kernels import (
    KERNEL_TIERS,
    kernel_backend,
    kernel_tier_label,
    use_kernel_tier,
)

__all__ = [
    "GridIndex",
    "IncrementalGridIndex",
    "IncrementalBatchOccupancy",
    "NeighborEngine",
    "BoundSnapshot",
    "GridNeighborEngine",
    "KDTreeNeighborEngine",
    "BruteForceNeighborEngine",
    "BatchNeighborQuery",
    "make_engine",
    "available_backends",
    "KERNEL_TIERS",
    "kernel_backend",
    "kernel_tier_label",
    "use_kernel_tier",
    "ManhattanPath",
    "VERTICAL_FIRST",
    "HORIZONTAL_FIRST",
    "choose_corners",
    "path_corner",
    "leg_lengths",
    "position_along_path",
    "as_points",
    "euclidean_distance",
    "manhattan_distance",
    "chebyshev_distance",
    "pairwise_euclidean",
    "pairwise_manhattan",
    "clamp_to_square",
    "in_square",
    "corner_distance",
    "manhattan_distance_to_box",
    "sample_uniform_square",
    "sample_beta22",
    "sample_length_biased_pair",
    "sample_uniform_disk",
]
