"""Incremental spatial indexes refreshed from per-step displacements.

The simulation's hot loop re-indexes the same agents every round, yet a
round moves each agent by at most ``v * dt`` — usually a fraction of a grid
bucket — so most bucket assignments survive from one round to the next.
The two classes here exploit that:

* :class:`IncrementalGridIndex` — a :class:`~repro.geometry.grid.GridIndex`
  whose :meth:`~IncrementalGridIndex.update` splices only the points that
  changed bucket into the existing counting-sort layout (O(moved * log
  moved) sorting plus O(n) memory passes) instead of re-running the full
  ``argsort`` build;
* :class:`IncrementalBatchOccupancy` — the batched variant used by the
  cell-cover flooding kernel: persistent per-replica flat cell ids over a
  ``(B, n, 2)`` position tensor, with optional per-cell occupancy counts
  maintained by +/-1 deltas at the cells points actually left or entered.

Both fall back to a full rebuild automatically when too many points moved
(``rebuild_fraction``) — an incremental splice only pays while the delta is
sparse — and both count their update/rebuild decisions so the perf harness
(``repro bench``) can report how often each path ran.

Incremental updates are *exact*: queries against an updated index return
the same results as against a freshly built one (asserted by the parity
tests; only the order of points *within* a bucket may differ, which no
boolean/count query can observe).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.grid import GridIndex
from repro.geometry.points import as_points
from repro.kernels import get_kernel

__all__ = ["IncrementalGridIndex", "IncrementalBatchOccupancy"]


class IncrementalGridIndex(GridIndex):
    """Bucket grid with in-place refresh from a new position snapshot.

    :meth:`update` diffs the new bucket assignment against the previous one
    and repairs the counting-sort layout (``_order`` / ``_starts``) by
    removing the moved points and merge-inserting them at their new
    buckets.  When more than ``rebuild_fraction`` of the points changed
    bucket, the splice would cost more than it saves and a full
    :meth:`~repro.geometry.grid.GridIndex.build` runs instead.

    Args:
        side: side length of the square region.
        cell_size: bucket side (same semantics as :class:`GridIndex`).
        rebuild_fraction: moved-points fraction above which ``update``
            falls back to a full rebuild.

    Attributes:
        n_updates: total :meth:`update` calls (including ones that rebuilt).
        n_rebuilds: updates that fell back to a full build.
        n_moved: cumulative number of points that changed bucket.
    """

    def __init__(self, side: float, cell_size: float, rebuild_fraction: float = 0.45):
        super().__init__(side, cell_size)
        if not 0.0 <= rebuild_fraction <= 1.0:
            raise ValueError(
                f"rebuild_fraction must be in [0, 1], got {rebuild_fraction}"
            )
        self.rebuild_fraction = float(rebuild_fraction)
        self._rank: np.ndarray = np.empty(0, dtype=np.intp)
        self.n_updates = 0
        self.n_rebuilds = 0
        self.n_moved = 0

    def build(self, points) -> "IncrementalGridIndex":
        super().build(points)
        # rank[i] = position of point i inside _order (inverse permutation).
        self._rank = np.empty(self.size, dtype=np.intp)
        self._rank[self._order] = np.arange(self.size, dtype=np.intp)
        return self

    def update(self, points) -> "IncrementalGridIndex":
        """Re-index ``points``, reusing the previous layout where possible.

        The first call (or a call with a different point count) builds from
        scratch; later calls splice only the points whose bucket changed.
        """
        points = as_points(points)
        self.n_updates += 1
        if points.shape[0] != self.size or self.size == 0:
            self.n_rebuilds += 1
            self.n_moved += points.shape[0]
            return self.build(points)
        ids = self._bucket_ids(points)
        moved = np.nonzero(ids != self._ids)[0]
        self.n_moved += moved.size
        if moved.size > self.rebuild_fraction * self.size:
            self.n_rebuilds += 1
            return self.build(points)
        # Positions may have shifted inside their buckets even when no
        # bucket assignment changed; distance tests read self._points.
        self._points = points
        if moved.size == 0:
            return self
        new_ids = ids[moved]
        by_bucket = np.argsort(new_ids, kind="stable")
        spliced = None
        kernel = get_kernel("grid_splice")
        if kernel is not None:
            # Compiled tier: one merge pass over the surviving layout and
            # the bucket-sorted moved points — same insertion positions
            # (new before equal old) as the searchsorted/insert pair below.
            removed = np.zeros(self.size, dtype=bool)
            removed[self._rank[moved]] = True
            spliced = kernel(
                self._order, self._sorted_ids, removed,
                np.ascontiguousarray(new_ids[by_bucket]),
                np.ascontiguousarray(moved[by_bucket]),
            )
        if spliced is not None:
            self._order, self._sorted_ids = spliced
        else:
            # Remove the moved points from the sorted layout ...
            keep = np.ones(self.size, dtype=bool)
            keep[self._rank[moved]] = False
            base_order = self._order[keep]
            base_ids = self._sorted_ids[keep]
            # ... and merge-insert them at their new buckets.
            insert_at = np.searchsorted(base_ids, new_ids[by_bucket], side="left")
            self._order = np.insert(base_order, insert_at, moved[by_bucket])
            self._sorted_ids = np.insert(base_ids, insert_at, new_ids[by_bucket])
        self._ids = ids
        # Bucket offsets via counts + cumsum: O(n + cells), cheaper than the
        # build path's searchsorted over every bucket id.
        counts = np.bincount(self._ids, minlength=self.n_cells * self.n_cells)
        self._starts[0] = 0
        np.cumsum(counts, out=self._starts[1:])
        self._rank[self._order] = np.arange(self.size, dtype=np.intp)
        return self


class IncrementalBatchOccupancy:
    """Persistent per-replica cell assignment over a ``(B, n, 2)`` tensor.

    The cell-cover flooding kernel needs, every round, the flat occupancy
    cell of each agent (``cid``) and, optionally, per-cell occupancy counts.
    This class keeps both alive across rounds:

    * :meth:`update` recomputes cell ids only for the requested replica
      ``rows`` (frozen replicas cannot move) and reports which agents
      changed cell;
    * when ``track_counts`` is set, the ``(B, m*m)`` count tensor is
      repaired with +/-1 deltas at the cells agents left/entered — an
      ``O(moved)`` scatter instead of an ``O(B*n)`` bincount — falling back
      to a full recount above ``rebuild_fraction``.

    Args:
        side: side of each replica's square.
        batch_size: number of replicas ``B``.
        cell_size: occupancy bucket side.
        track_counts: maintain the per-cell count tensor (the flooding
            kernel needs only ``cid``; counts serve density/diagnostic
            consumers and the bench).
        rebuild_fraction: moved-agents fraction above which the count
            repair falls back to a full bincount.
    """

    def __init__(
        self,
        side: float,
        batch_size: int,
        cell_size: float,
        track_counts: bool = False,
        rebuild_fraction: float = 0.25,
    ):
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.side = float(side)
        self.batch_size = int(batch_size)
        self.cell_size = float(cell_size)
        self.m = max(1, int(math.ceil(self.side / self.cell_size)))
        self.track_counts = bool(track_counts)
        self.rebuild_fraction = float(rebuild_fraction)
        self.cid: np.ndarray = None  # (B, n) replica-local flat cell ids
        self.gid: np.ndarray = None  # (B, n) batch-global flat cell ids
        self.counts: np.ndarray = None  # (B, m*m) when track_counts
        self.n_updates = 0
        self.n_rebuilds = 0
        self.n_moved = 0

    def _cells_of(self, positions: np.ndarray) -> np.ndarray:
        """Flat replica-local cell id of each position (same rule as the
        cell-cover kernel: truncate, clip to the grid)."""
        ij = (positions * (1.0 / self.cell_size)).astype(np.int64)
        np.clip(ij, 0, self.m - 1, out=ij)
        return ij[..., 0] * self.m + ij[..., 1]

    def update(self, positions: np.ndarray, rows=None) -> np.ndarray:
        """Refresh cell assignments for a new snapshot; returns ``cid``.

        Args:
            positions: ``(B, n, 2)`` tensor.
            rows: optional 1-D array of replica indices that may have moved
                since the previous snapshot (e.g. the active replicas);
                other rows are trusted unchanged.  Ignored on first use.
        """
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 3 or positions.shape[2] != 2:
            raise ValueError(f"positions must have shape (B, n, 2), got {positions.shape}")
        if positions.shape[0] != self.batch_size:
            raise ValueError(
                f"expected {self.batch_size} replicas, got {positions.shape[0]}"
            )
        self.n_updates += 1
        n = positions.shape[1]
        fresh = self.cid is None or self.cid.shape != (self.batch_size, n)
        if fresh:
            self.n_rebuilds += 1
            self.n_moved += self.batch_size * n
            self.cid = self._cells_of(positions)
            self.gid = self.cid + (
                np.arange(self.batch_size, dtype=np.int64)[:, None] * (self.m * self.m)
            )
            if self.track_counts:
                self.counts = np.bincount(
                    self.gid.reshape(-1), minlength=self.batch_size * self.m * self.m
                ).astype(np.int64).reshape(self.batch_size, self.m * self.m)
            return self.cid
        mm = self.m * self.m
        if not self.track_counts:
            # Without counts there is nothing to repair by deltas: the cell
            # assignment itself is two vectorized passes, so simply
            # recompute it — restricted to the replicas that can have
            # moved, which is where the incremental win lives (frozen
            # replicas cost nothing).
            if rows is None or rows.size == self.batch_size:
                self.cid = self._cells_of(positions)
                np.add(
                    self.cid,
                    np.arange(self.batch_size, dtype=np.int64)[:, None] * mm,
                    out=self.gid,
                )
            else:
                sub_cid = self._cells_of(positions[rows])
                self.cid[rows] = sub_cid
                self.gid[rows] = sub_cid + rows.astype(np.int64)[:, None] * mm
            return self.cid
        if rows is None or rows.size == self.batch_size:
            new_cid = self._cells_of(positions)
            moved_b, moved_i = np.nonzero(new_cid != self.cid)
            old_cells = self.cid[moved_b, moved_i]
            new_cells = new_cid[moved_b, moved_i]
            self.cid = new_cid
        else:
            sub_cid = self._cells_of(positions[rows])
            sub_b, moved_i = np.nonzero(sub_cid != self.cid[rows])
            moved_b = rows[sub_b]
            old_cells = self.cid[moved_b, moved_i]
            new_cells = sub_cid[sub_b, moved_i]
            self.cid[rows] = sub_cid
        self.n_moved += moved_b.size
        if moved_b.size:
            base = moved_b.astype(np.int64) * mm
            self.gid[moved_b, moved_i] = new_cells + base
            if moved_b.size > self.rebuild_fraction * self.gid.size:
                self.n_rebuilds += 1
                self.counts = np.bincount(
                    self.gid.reshape(-1), minlength=self.batch_size * mm
                ).astype(np.int64).reshape(self.batch_size, mm)
            else:
                flat = self.counts.reshape(-1)
                old_gid = base + old_cells
                new_gid = base + new_cells
                kernel = get_kernel("occupancy_delta")
                if kernel is None or kernel(flat, old_gid, new_gid) is None:
                    np.subtract.at(flat, old_gid, 1)
                    np.add.at(flat, new_gid, 1)
        return self.cid
