"""Manhattan paths between points of the square.

The MRWP model (Section 2 of the paper) moves an agent from ``(x0, y0)`` to a
destination ``(x, y)`` along one of the two *Manhattan shortest paths*:

* ``P1 = (x0, y0) -> (x0, y) -> (x, y)``   (vertical leg first), or
* ``P2 = (x0, y0) -> (x, y0) -> (x, y)``   (horizontal leg first),

chosen uniformly at random.  This module provides the path representation and
vectorized helpers to pick corners, measure legs, and interpolate positions
along a path — the building blocks used by :mod:`repro.mobility.mrwp` and by
the perfect-simulation sampler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.points import as_points, manhattan_distance

__all__ = [
    "ManhattanPath",
    "choose_corners",
    "path_corner",
    "leg_lengths",
    "position_along_path",
    "VERTICAL_FIRST",
    "HORIZONTAL_FIRST",
]

#: Path selector value for P1: travel the vertical leg first.
VERTICAL_FIRST = 0
#: Path selector value for P2: travel the horizontal leg first.
HORIZONTAL_FIRST = 1


@dataclass(frozen=True)
class ManhattanPath:
    """One of the two Manhattan shortest paths between ``start`` and ``end``.

    Attributes:
        start: the origin point ``(x0, y0)``.
        end: the destination point ``(x, y)``.
        vertical_first: True for path ``P1`` (corner ``(x0, y)``), False for
            ``P2`` (corner ``(x, y0)``).
    """

    start: tuple
    end: tuple
    vertical_first: bool

    @property
    def corner(self) -> tuple:
        """The intermediate way-point where the path turns."""
        if self.vertical_first:
            return (self.start[0], self.end[1])
        return (self.end[0], self.start[1])

    @property
    def length(self) -> float:
        """Total path length — the Manhattan distance between endpoints."""
        return float(abs(self.end[0] - self.start[0]) + abs(self.end[1] - self.start[1]))

    @property
    def first_leg_length(self) -> float:
        """Length of the leg from ``start`` to the corner."""
        if self.vertical_first:
            return float(abs(self.end[1] - self.start[1]))
        return float(abs(self.end[0] - self.start[0]))

    @property
    def second_leg_length(self) -> float:
        """Length of the leg from the corner to ``end``."""
        return self.length - self.first_leg_length

    def point_at(self, travelled: float) -> tuple:
        """Point reached after walking ``travelled`` distance from ``start``.

        ``travelled`` is clipped into ``[0, length]``.
        """
        travelled = min(max(travelled, 0.0), self.length)
        start = np.asarray(self.start, dtype=np.float64).reshape(1, 2)
        end = np.asarray(self.end, dtype=np.float64).reshape(1, 2)
        flags = np.asarray([VERTICAL_FIRST if self.vertical_first else HORIZONTAL_FIRST])
        point = position_along_path(start, end, flags, np.asarray([travelled]))
        return (float(point[0, 0]), float(point[0, 1]))


def path_corner(start, end, path_choice) -> np.ndarray:
    """Vectorized corner (turn way-point) of the chosen Manhattan path.

    Args:
        start: ``(n, 2)`` origins.
        end: ``(n, 2)`` destinations.
        path_choice: ``(n,)`` integer array of :data:`VERTICAL_FIRST` /
            :data:`HORIZONTAL_FIRST` selectors.

    Returns:
        ``(n, 2)`` corner positions.
    """
    start = as_points(start)
    end = as_points(end)
    path_choice = np.asarray(path_choice)
    vertical = path_choice == VERTICAL_FIRST
    corner = np.empty_like(start)
    corner[:, 0] = np.where(vertical, start[:, 0], end[:, 0])
    corner[:, 1] = np.where(vertical, end[:, 1], start[:, 1])
    return corner


def choose_corners(start, end, rng: np.random.Generator) -> tuple:
    """Choose uniformly between the two Manhattan paths for each point pair.

    Returns:
        tuple ``(corner, path_choice)`` where ``corner`` is the ``(n, 2)``
        array of turn points and ``path_choice`` the ``(n,)`` selector array.
    """
    start = as_points(start)
    path_choice = rng.integers(0, 2, size=start.shape[0])
    return path_corner(start, end, path_choice), path_choice


def leg_lengths(start, end, path_choice) -> tuple:
    """Vectorized ``(first_leg, second_leg)`` lengths of the chosen paths."""
    start = as_points(start)
    end = as_points(end)
    path_choice = np.asarray(path_choice)
    dx = np.abs(end[:, 0] - start[:, 0])
    dy = np.abs(end[:, 1] - start[:, 1])
    vertical = path_choice == VERTICAL_FIRST
    first = np.where(vertical, dy, dx)
    second = np.where(vertical, dx, dy)
    return first, second


def position_along_path(start, end, path_choice, travelled) -> np.ndarray:
    """Vectorized position after walking ``travelled`` along each path.

    ``travelled`` values are clipped into ``[0, manhattan_length]`` per path.
    This is the core primitive of the perfect-simulation sampler, which drops
    an agent uniformly at random along its current trip.
    """
    start = as_points(start)
    end = as_points(end)
    travelled = np.asarray(travelled, dtype=np.float64)
    total = manhattan_distance(start, end)
    travelled = np.clip(travelled, 0.0, total)

    corner = path_corner(start, end, path_choice)
    first, _second = leg_lengths(start, end, path_choice)

    on_first = travelled <= first
    # Fraction along the active leg; guard zero-length legs.
    with np.errstate(invalid="ignore", divide="ignore"):
        frac_first = np.where(first > 0, travelled / np.where(first > 0, first, 1.0), 0.0)
        remaining = travelled - first
        second_len = total - first
        frac_second = np.where(second_len > 0, remaining / np.where(second_len > 0, second_len, 1.0), 0.0)
    frac_first = np.clip(frac_first, 0.0, 1.0)
    frac_second = np.clip(frac_second, 0.0, 1.0)

    pos_first = start + frac_first[:, None] * (corner - start)
    pos_second = corner + frac_second[:, None] * (end - corner)
    return np.where(on_first[:, None], pos_first, pos_second)
