"""Uniform bucket-grid spatial index (pure numpy).

The flooding simulation needs, at every time step, the set of non-informed
agents that have an informed agent within Euclidean distance ``R``.  This
module implements a classic uniform grid over ``[0, side]^2`` with bucket
side ``>= R``, so every radius-``R`` query only inspects the 3x3 block of
buckets around the query point.

The implementation is fully vectorized: points are bucketed with a counting
sort (``argsort`` on flat bucket ids + ``searchsorted`` offsets) and queries
expand candidate lists with ``repeat``/``arange`` tricks rather than Python
loops.  A scipy cKDTree engine with the same interface lives in
:mod:`repro.geometry.neighbors`; the two are cross-validated in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import as_points

__all__ = ["GridIndex"]


class GridIndex:
    """Bucket grid over the square ``[0, side]^2``.

    Args:
        side: side length of the square region.
        cell_size: bucket side; queries with radius ``r <= cell_size`` are
            answered exactly by scanning the 3x3 neighborhood.  Larger radii
            scan a proportionally larger block and remain exact.

    Example:
        >>> import numpy as np
        >>> index = GridIndex(side=10.0, cell_size=1.0)
        >>> index.build(np.array([[1.0, 1.0], [5.0, 5.0]]))
        >>> bool(index.any_within(np.array([[1.5, 1.0]]), 1.0)[0])
        True
    """

    def __init__(self, side: float, cell_size: float):
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.side = float(side)
        self.cell_size = float(cell_size)
        self.n_cells = max(1, int(np.ceil(self.side / self.cell_size)))
        self._points: np.ndarray = np.empty((0, 2))
        self._order: np.ndarray = np.empty(0, dtype=np.intp)
        self._ids: np.ndarray = np.empty(0, dtype=np.intp)
        self._sorted_ids: np.ndarray = np.empty(0, dtype=np.intp)
        self._starts: np.ndarray = np.zeros(self.n_cells * self.n_cells + 1, dtype=np.intp)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _bucket_ids(self, points: np.ndarray) -> np.ndarray:
        ij = np.floor(points / self.cell_size).astype(np.intp)
        np.clip(ij, 0, self.n_cells - 1, out=ij)
        return ij[:, 0] * self.n_cells + ij[:, 1]

    def build(self, points) -> "GridIndex":
        """Index ``points`` (shape ``(n, 2)``); replaces any previous build."""
        points = as_points(points)
        self._points = points
        ids = self._bucket_ids(points)
        self._order = np.argsort(ids, kind="stable")
        # Bucket ids (per point, and in sorted order) are retained so that
        # IncrementalGridIndex.update can splice moved points in place.
        self._ids = ids
        self._sorted_ids = ids[self._order]
        # starts[b] .. starts[b+1] is the slice of self._order in bucket b.
        self._starts = np.searchsorted(
            self._sorted_ids, np.arange(self.n_cells * self.n_cells + 1)
        )
        return self

    @property
    def size(self) -> int:
        """Number of indexed points."""
        return int(self._points.shape[0])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _candidate_arrays(self, queries: np.ndarray, radius: float) -> tuple:
        """Return ``(query_idx, point_idx)`` candidate pairs from nearby buckets.

        Exact distance filtering is done by the callers; this only gathers
        every indexed point in the block of buckets intersecting each query's
        radius ball.
        """
        if self.size == 0 or queries.shape[0] == 0:
            return (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
        reach = max(1, int(np.ceil(radius / self.cell_size)))
        qij = np.floor(queries / self.cell_size).astype(np.intp)
        np.clip(qij, 0, self.n_cells - 1, out=qij)

        query_parts = []
        point_parts = []
        offsets = range(-reach, reach + 1)
        for di in offsets:
            ci = qij[:, 0] + di
            valid_i = (ci >= 0) & (ci < self.n_cells)
            for dj in offsets:
                cj = qij[:, 1] + dj
                valid = valid_i & (cj >= 0) & (cj < self.n_cells)
                if not np.any(valid):
                    continue
                qidx = np.nonzero(valid)[0]
                bucket = ci[qidx] * self.n_cells + cj[qidx]
                lo = self._starts[bucket]
                hi = self._starts[bucket + 1]
                counts = hi - lo
                nonempty = counts > 0
                if not np.any(nonempty):
                    continue
                qidx = qidx[nonempty]
                lo = lo[nonempty]
                counts = counts[nonempty]
                total = int(counts.sum())
                # Expand ragged slices [lo, lo+count) into one flat array:
                # position within the flat output minus each slice's start
                # offset (exclusive cumsum), plus the slice's lo.
                cum = np.cumsum(counts)
                flat = np.arange(total, dtype=np.intp)
                flat += np.repeat(lo, counts) - np.repeat(cum - counts, counts)
                point_parts.append(self._order[flat])
                query_parts.append(np.repeat(qidx, counts))
        if not query_parts:
            return (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
        return (np.concatenate(query_parts), np.concatenate(point_parts))

    def any_within(self, queries, radius: float) -> np.ndarray:
        """Boolean mask: does each query point have an indexed point within ``radius``?

        Distances are Euclidean and the test is inclusive (``<= radius``),
        matching the paper's "at distance at most R" rule.
        """
        queries = as_points(queries)
        result = np.zeros(queries.shape[0], dtype=bool)
        qidx, pidx = self._candidate_arrays(queries, radius)
        if qidx.size == 0:
            return result
        diff = queries[qidx] - self._points[pidx]
        hit = np.sum(diff * diff, axis=1) <= radius * radius
        np.logical_or.at(result, qidx[hit], True)
        return result

    def count_within(self, queries, radius: float) -> np.ndarray:
        """Number of indexed points within ``radius`` of each query point."""
        queries = as_points(queries)
        counts = np.zeros(queries.shape[0], dtype=np.intp)
        qidx, pidx = self._candidate_arrays(queries, radius)
        if qidx.size == 0:
            return counts
        diff = queries[qidx] - self._points[pidx]
        hit = np.sum(diff * diff, axis=1) <= radius * radius
        np.add.at(counts, qidx[hit], 1)
        return counts

    def query_radius(self, queries, radius: float) -> list:
        """Indices of indexed points within ``radius`` of each query point.

        Returns:
            list of 1-D integer arrays, one per query point.  Use the bulk
            methods (:meth:`any_within`, :meth:`count_within`,
            :meth:`pairs_within`) in hot paths; this method exists for
            inspection and testing.
        """
        queries = as_points(queries)
        out = [np.empty(0, dtype=np.intp) for _ in range(queries.shape[0])]
        qidx, pidx = self._candidate_arrays(queries, radius)
        if qidx.size == 0:
            return out
        diff = queries[qidx] - self._points[pidx]
        hit = np.sum(diff * diff, axis=1) <= radius * radius
        qidx = qidx[hit]
        pidx = pidx[hit]
        order = np.argsort(qidx, kind="stable")
        qidx = qidx[order]
        pidx = pidx[order]
        bounds = np.searchsorted(qidx, np.arange(queries.shape[0] + 1))
        for i in range(queries.shape[0]):
            out[i] = pidx[bounds[i]:bounds[i + 1]]
        return out

    def pairs_within(self, radius: float) -> np.ndarray:
        """All unordered index pairs ``(i, j), i < j`` at distance ``<= radius``.

        Used to build disk-graph snapshots ``G_t`` and contact traces.

        Returns:
            integer array of shape ``(k, 2)``.
        """
        if self.size == 0:
            return np.empty((0, 2), dtype=np.intp)
        qidx, pidx = self._candidate_arrays(self._points, radius)
        keep = qidx < pidx
        qidx = qidx[keep]
        pidx = pidx[keep]
        diff = self._points[qidx] - self._points[pidx]
        hit = np.sum(diff * diff, axis=1) <= radius * radius
        return np.stack([qidx[hit], pidx[hit]], axis=1)
