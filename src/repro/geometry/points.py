"""Point and distance utilities on the ``[0, L] x [0, L]`` square.

Agents live on a bounded square region of side length ``L`` (the paper's
support).  All functions are vectorized over numpy arrays of shape ``(n, 2)``
(or broadcastable variants) and avoid per-point Python loops.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_points",
    "euclidean_distance",
    "manhattan_distance",
    "chebyshev_distance",
    "pairwise_euclidean",
    "pairwise_manhattan",
    "clamp_to_square",
    "in_square",
    "corner_distance",
    "manhattan_distance_to_box",
]


def as_points(data) -> np.ndarray:
    """Coerce ``data`` to a float64 array of shape ``(n, 2)``.

    A single point ``(x, y)`` is promoted to shape ``(1, 2)``.

    Raises:
        ValueError: if ``data`` cannot be interpreted as 2-D points.
    """
    points = np.asarray(data, dtype=np.float64)
    if points.ndim == 1:
        if points.shape[0] != 2:
            raise ValueError(f"a single point must have 2 coordinates, got {points.shape[0]}")
        points = points.reshape(1, 2)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected points of shape (n, 2), got {points.shape}")
    return points


def euclidean_distance(a, b) -> np.ndarray:
    """Elementwise Euclidean distance between point arrays ``a`` and ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    diff = a - b
    return np.sqrt(np.sum(diff * diff, axis=-1))


def manhattan_distance(a, b) -> np.ndarray:
    """Elementwise Manhattan (L1) distance between point arrays.

    This is the length of either Manhattan path between the two points, and
    therefore the trip length of an MRWP leg pair (Section 2 of the paper).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return np.sum(np.abs(a - b), axis=-1)


def chebyshev_distance(a, b) -> np.ndarray:
    """Elementwise Chebyshev (L-infinity) distance between point arrays."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return np.max(np.abs(a - b), axis=-1)


def pairwise_euclidean(a, b=None) -> np.ndarray:
    """Dense pairwise Euclidean distance matrix.

    Args:
        a: array of shape ``(n, 2)``.
        b: optional array of shape ``(m, 2)``; defaults to ``a``.

    Returns:
        array of shape ``(n, m)``.  Intended for brute-force validation of
        the spatial indexes, not for large ``n``.
    """
    a = as_points(a)
    b = a if b is None else as_points(b)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


def pairwise_manhattan(a, b=None) -> np.ndarray:
    """Dense pairwise Manhattan distance matrix (see :func:`pairwise_euclidean`)."""
    a = as_points(a)
    b = a if b is None else as_points(b)
    return np.sum(np.abs(a[:, None, :] - b[None, :, :]), axis=-1)


def clamp_to_square(points, side: float) -> np.ndarray:
    """Clamp points into ``[0, side]^2`` (numerical-noise guard after moves)."""
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    return np.clip(np.asarray(points, dtype=np.float64), 0.0, side)


def in_square(points, side: float, tol: float = 0.0) -> np.ndarray:
    """Boolean mask of points lying inside ``[0, side]^2`` (with tolerance)."""
    points = as_points(points)
    low = -tol
    high = side + tol
    return np.all((points >= low) & (points <= high), axis=1)


def corner_distance(points, side: float) -> np.ndarray:
    """Manhattan distance from each point to the *nearest square corner*.

    The paper's Suburb consists of four regions hugging the corners
    (Definition 4); distance-to-corner is the natural coordinate there.
    """
    points = as_points(points)
    x = np.minimum(points[:, 0], side - points[:, 0])
    y = np.minimum(points[:, 1], side - points[:, 1])
    return x + y


def manhattan_distance_to_box(points, x_lo: float, y_lo: float, x_hi: float, y_hi: float) -> np.ndarray:
    """Manhattan distance from each point to an axis-aligned box (0 inside).

    Used for the *Extended Suburb* of Lemma 16: all points within Manhattan
    distance ``2S`` of the Suburb.
    """
    points = as_points(points)
    dx = np.maximum(np.maximum(x_lo - points[:, 0], points[:, 0] - x_hi), 0.0)
    dy = np.maximum(np.maximum(y_lo - points[:, 1], points[:, 1] - y_hi), 0.0)
    return dx + dy
