"""Result containers and multi-trial aggregation."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["FloodingResult", "TrialSummary", "summarize"]


@dataclass
class FloodingResult:
    """Outcome of a single flooding (or baseline-protocol) run.

    Attributes:
        flooding_time: first step at which all agents are informed
            (``math.inf`` when the horizon ended or the protocol stalled).
        completed: whether full coverage was reached.
        stalled: whether the protocol reported it can no longer progress
            (SIR die-out, parsimonious windows all closed).
        n_steps: number of simulated steps.
        informed_history: informed counts per step, shape ``(n_steps + 1,)``
            (entry 0 is the initial state: 1).
        source: index of the source agent.
        source_in_central_zone: zone of the source at time 0 (None when
            zone tracking is off).
        cz_completion_time: first step at which every agent *currently
            located* in the Central Zone was informed (``math.inf`` if
            never); None when zone tracking is off.
        suburb_completion_time: same for agents located in the Suburb.
        final_coverage: fraction informed at the end of the run.
    """

    flooding_time: float
    completed: bool
    stalled: bool
    n_steps: int
    informed_history: np.ndarray
    source: int
    source_in_central_zone: bool = None
    cz_completion_time: float = None
    suburb_completion_time: float = None
    final_coverage: float = 0.0
    extras: dict = field(default_factory=dict)

    def coverage_at(self, t: int) -> float:
        """Fraction of informed agents after step ``t``."""
        total = self.extras.get("n_agents")
        if total is None:
            raise KeyError("result does not record n_agents")
        return float(self.informed_history[min(t, self.n_steps)]) / total

    def time_to_coverage(self, fraction: float) -> float:
        """First step reaching the given informed fraction (``inf`` if never)."""
        total = self.extras.get("n_agents")
        if total is None:
            raise KeyError("result does not record n_agents")
        target = fraction * total
        hits = np.nonzero(self.informed_history >= target)[0]
        return float(hits[0]) if hits.size else math.inf


@dataclass(frozen=True)
class TrialSummary:
    """Summary statistics of a sample of scalar trial outcomes."""

    n_trials: int
    n_finite: int
    mean: float
    std: float
    median: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def format(self, unit: str = "") -> str:
        """Compact ``mean ± half-CI`` rendering."""
        if self.n_finite == 0:
            return "— (no finite trials)"
        half = (self.ci_high - self.ci_low) / 2.0
        suffix = f" {unit}" if unit else ""
        return f"{self.mean:.1f} ± {half:.1f}{suffix} (median {self.median:.1f})"


def summarize(values, confidence: float = 0.95) -> TrialSummary:
    """Mean / spread / normal-approximation CI of scalar outcomes.

    Infinite values (incomplete trials) are excluded from the moments but
    reported through ``n_finite`` vs ``n_trials``.
    """
    values = np.asarray(list(values), dtype=np.float64)
    finite = values[np.isfinite(values)]
    n = values.size
    k = finite.size
    if k == 0:
        nan = float("nan")
        return TrialSummary(n, 0, nan, nan, nan, nan, nan, nan, nan)
    mean = float(finite.mean())
    std = float(finite.std(ddof=1)) if k > 1 else 0.0
    # Normal-approximation CI; exact enough for reporting purposes and
    # avoids a scipy dependency in the core path.
    z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}.get(round(confidence, 2), 1.9600)
    half = z * std / math.sqrt(k) if k > 1 else 0.0
    return TrialSummary(
        n_trials=n,
        n_finite=k,
        mean=mean,
        std=std,
        median=float(np.median(finite)),
        minimum=float(finite.min()),
        maximum=float(finite.max()),
        ci_low=mean - half,
        ci_high=mean + half,
    )
