"""Parallel trial execution.

The full-scale sweeps (EXPERIMENTS.md ``--scale full``) run dozens of
independent trials; this module fans them out over processes.  Trials stay
bit-reproducible: the seed schedule is identical to
:func:`repro.simulation.runner.run_trials`, so serial and parallel
execution produce the same results (asserted in the tests).

Sharding follows the configured engine.  With ``engine="scalar"`` each
process runs one trial per job (the original layout).  With
``engine="batch"`` each process runs one **batch** per job — a contiguous
slice of the trial sequence advanced in lock-step by
:func:`repro.simulation.batch.run_flooding_batch` — so the vectorization
win multiplies with the process fan-out instead of being sliced away.

The seed-state plumbing (``_child_states`` / ``_rebuild_seed_seq``) and the
pool dispatcher (``_dispatch``) are shared with the sweep scheduler
(:mod:`repro.simulation.sweep`), which schedules whole experiment grids —
many configs at once — over the same worker machinery.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.simulation.config import FloodingConfig
from repro.simulation.results import summarize
from repro.simulation.runner import run_flooding

__all__ = ["WorkerPool", "run_trials_parallel", "sweep_parallel"]


def _rebuild_seed_seq(state) -> np.random.SeedSequence:
    # SeedSequence doesn't pickle portably across numpy versions; rebuild
    # the child from its entropy/spawn-key state.
    return np.random.SeedSequence(entropy=state["entropy"], spawn_key=state["spawn_key"])


def _run_one(args):
    config, state = args
    return run_flooding(config, seed_seq=_rebuild_seed_seq(state))


def _run_batch(args):
    from repro.simulation.batch import run_protocol_batch

    config, states = args
    return run_protocol_batch(config, [_rebuild_seed_seq(s) for s in states])


def _child_states(config: FloodingConfig, n_trials: int) -> list:
    root = np.random.SeedSequence(config.seed)
    return [
        {"entropy": child.entropy, "spawn_key": child.spawn_key}
        for child in root.spawn(n_trials)
    ]


def _child_states_range(config: FloodingConfig, start: int, stop: int) -> list:
    """Seed states for trials ``[start, stop)`` of a configuration.

    ``SeedSequence.spawn`` keys children by index, so the state of trial
    ``i`` never depends on how many trials a run asks for — the property
    that makes sequential (adaptive / checkpoint-resumed) execution
    bit-identical to a single uninterrupted pass.
    """
    return _child_states(config, stop)[start:]


def _batch_jobs(config: FloodingConfig, states: list, max_workers) -> list:
    """Slice per-trial seed states into contiguous batch-per-worker jobs."""
    workers = max_workers if max_workers else (os.cpu_count() or 1)
    size = config.batch_size if config.batch_size > 0 else math.ceil(len(states) / workers)
    size = max(1, size)
    return [
        (config, states[start:start + size]) for start in range(0, len(states), size)
    ]


def _dispatch(runner, jobs: list, max_workers) -> list:
    """Run jobs serially (single job / single worker) or over a process pool."""
    if len(jobs) <= 1 or max_workers == 1:
        return [runner(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(runner, jobs))


class WorkerPool:
    """Reusable job dispatcher: serial for one worker, pooled otherwise.

    :func:`_dispatch` spins a :class:`ProcessPoolExecutor` up and down per
    call — fine for a single-pass sweep, wasteful for the sequential
    (adaptive / checkpointed) scheduler that dispatches many small rounds.
    This wrapper keeps one pool alive across rounds, created lazily on the
    first round that actually has two or more jobs, and preserves
    ``_dispatch``'s semantics exactly: single-job or single-worker rounds
    run in-process, results come back in job order.

    Args:
        max_workers: worker processes; ``1`` never forks, ``None`` lets
            the executor pick.
    """

    def __init__(self, max_workers: int | None = 1):
        self.max_workers = max_workers
        self._pool = None

    def map(self, runner, jobs: list) -> list:
        """Run one round of jobs; results in job order."""
        if len(jobs) <= 1 or self.max_workers == 1:
            return [runner(job) for job in jobs]
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return list(self._pool.map(runner, jobs))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def run_trials_parallel(
    config: FloodingConfig, n_trials: int, max_workers: int = None
) -> list:
    """Parallel version of :func:`repro.simulation.runner.run_trials`.

    Results are returned in trial order and match the serial runner exactly
    (same seed schedule), for both engines.

    Args:
        max_workers: process count (default: executor's choice).
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    states = _child_states(config, n_trials)
    if config.resolved_engine == "batch":
        jobs = _batch_jobs(config, states, max_workers)
        batches = _dispatch(_run_batch, jobs, max_workers)
        return [result for batch in batches for result in batch]
    jobs = [(config, state) for state in states]
    return _dispatch(_run_one, jobs, max_workers)


def sweep_parallel(
    config: FloodingConfig,
    parameter: str,
    values,
    n_trials: int = 5,
    max_workers: int = None,
) -> list:
    """Parallel version of :func:`repro.simulation.runner.sweep`.

    All (value, trial) jobs share one process pool; with ``engine="batch"``
    each parameter value's trials are sharded batch-per-worker instead.

    Returns:
        list of ``(value, TrialSummary, results)`` tuples, in input order.
    """
    values = list(values)
    jobs = []
    bounds = []
    for value in values:
        variant = config.with_options(**{parameter: value})
        states = _child_states(variant, n_trials)
        if config.resolved_engine == "batch":
            variant_jobs = _batch_jobs(variant, states, max_workers)
        else:
            variant_jobs = [(variant, state) for state in states]
        start = len(jobs)
        jobs.extend(variant_jobs)
        bounds.append((value, start, start + len(variant_jobs)))
    if config.resolved_engine == "batch":
        groups = _dispatch(_run_batch, jobs, max_workers)
    else:
        groups = [[result] for result in _dispatch(_run_one, jobs, max_workers)]
    out = []
    for value, start, end in bounds:
        chunk = [result for group in groups[start:end] for result in group]
        out.append((value, summarize(r.flooding_time for r in chunk), chunk))
    return out
