"""Parallel trial execution.

The full-scale sweeps (EXPERIMENTS.md ``--scale full``) run dozens of
independent trials; this module fans them out over processes.  Trials stay
bit-reproducible: the seed schedule is identical to
:func:`repro.simulation.runner.run_trials`, so serial and parallel
execution produce the same results (asserted in the tests).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.simulation.config import FloodingConfig
from repro.simulation.results import summarize
from repro.simulation.runner import run_flooding

__all__ = ["run_trials_parallel", "sweep_parallel"]


def _run_one(args):
    config, entropy = args
    # SeedSequence doesn't pickle portably across numpy versions; rebuild
    # the child from its entropy/spawn-key state.
    seed_seq = np.random.SeedSequence(
        entropy=entropy["entropy"], spawn_key=entropy["spawn_key"]
    )
    return run_flooding(config, seed_seq=seed_seq)


def _child_states(config: FloodingConfig, n_trials: int) -> list:
    root = np.random.SeedSequence(config.seed)
    return [
        {"entropy": child.entropy, "spawn_key": child.spawn_key}
        for child in root.spawn(n_trials)
    ]


def run_trials_parallel(
    config: FloodingConfig, n_trials: int, max_workers: int = None
) -> list:
    """Parallel version of :func:`repro.simulation.runner.run_trials`.

    Results are returned in trial order and match the serial runner exactly
    (same seed schedule).

    Args:
        max_workers: process count (default: executor's choice).
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    jobs = [(config, state) for state in _child_states(config, n_trials)]
    if n_trials == 1 or max_workers == 1:
        return [_run_one(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_run_one, jobs))


def sweep_parallel(
    config: FloodingConfig,
    parameter: str,
    values,
    n_trials: int = 5,
    max_workers: int = None,
) -> list:
    """Parallel version of :func:`repro.simulation.runner.sweep`.

    All (value, trial) jobs share one process pool.

    Returns:
        list of ``(value, TrialSummary, results)`` tuples, in input order.
    """
    values = list(values)
    jobs = []
    bounds = []
    for value in values:
        variant = config.with_options(**{parameter: value})
        states = _child_states(variant, n_trials)
        start = len(jobs)
        jobs.extend((variant, state) for state in states)
        bounds.append((value, start, start + n_trials))
    if max_workers == 1:
        results = [_run_one(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            results = list(pool.map(_run_one, jobs))
    out = []
    for value, start, end in bounds:
        chunk = results[start:end]
        out.append((value, summarize(r.flooding_time for r in chunk), chunk))
    return out
