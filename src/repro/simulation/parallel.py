"""Parallel trial execution with crash-surviving worker pools.

The full-scale sweeps (EXPERIMENTS.md ``--scale full``) run dozens of
independent trials; this module fans them out over processes.  Trials stay
bit-reproducible: the seed schedule is identical to
:func:`repro.simulation.runner.run_trials`, so serial and parallel
execution produce the same results (asserted in the tests).

Sharding follows each configuration's **resolved** engine.  With
``engine="scalar"`` each process runs one trial per job (the original
layout).  With ``engine="batch"`` each process runs one **batch** per job —
a contiguous slice of the trial sequence advanced in lock-step by
:func:`repro.simulation.batch.run_protocol_batch` — so the vectorization
win multiplies with the process fan-out instead of being sliced away.
``sweep_parallel`` resolves the engine *per variant*: sweeping a parameter
that flips an ``engine="auto"`` resolution (e.g. mobility native → ferry)
dispatches each variant through its own engine, never the base config's.

**Fault tolerance.**  A single OOM-killed or segfaulted child used to
raise :class:`~concurrent.futures.process.BrokenProcessPool` out of the
dispatcher and abort the whole round, discarding every in-flight result.
:class:`WorkerPool` now submits per-job futures: a pool break (or a
``job_timeout`` overrun) loses only the unfinished jobs.  The pool is
respawned and the survivors are re-run **one at a time** — a broken pool
cannot say which job killed it, so serializing the retries is what makes
the culprit identifiable — with a deterministic capped exponential backoff
schedule (:func:`backoff_delays`; no wall-clock ever enters results).  A
job that keeps killing fresh pools solo is quarantined: the round raises
:class:`PoisonJobError` naming the job and carrying every completed
result, so callers (the sweep scheduler persists them to its checkpoint)
never lose finished work to one poisonous input.

The seed-state plumbing (``_child_states`` / ``_rebuild_seed_seq``) and the
pool dispatcher (``_dispatch``) are shared with the sweep scheduler
(:mod:`repro.simulation.sweep`), which schedules whole experiment grids —
many configs at once — over the same worker machinery.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.simulation.config import FloodingConfig
from repro.simulation.results import summarize
from repro.simulation.runner import run_flooding

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "PoisonJobError",
    "WorkerPool",
    "backoff_delays",
    "run_trials_parallel",
    "sweep_parallel",
]

#: Crash retries per job (after the first solo re-run) before quarantine.
DEFAULT_MAX_RETRIES = 3


class PoisonJobError(RuntimeError):
    """A job repeatedly crashed its worker process and was quarantined.

    Raised by :meth:`WorkerPool.map` after the offending job killed a
    fresh single-job pool ``max_retries + 1`` times in a row — the
    signature of a poisonous input (deterministic OOM, segfaulting
    extension call), not of an unlucky scheduling accident.  Every other
    job of the round ran to completion first; the results ride on
    :attr:`completed` so callers can persist them before propagating.

    Attributes:
        jobs: ``(index, label, attempts)`` per quarantined job, in job
            order — ``label`` is the caller's human-readable description
            (the sweep scheduler passes the point keys and trial/seed
            range).
        completed: ``{job_index: result}`` for every job that finished.
    """

    def __init__(self, message: str, jobs: list, completed: dict):
        super().__init__(message)
        self.jobs = list(jobs)
        self.completed = dict(completed)


class _JobCrash(RuntimeError):
    """Internal: one solo job's worker died (pool break or timeout)."""


def backoff_delays(retries: int, base: float = 0.05, cap: float = 1.0) -> list:
    """Deterministic capped exponential backoff schedule, in seconds.

    ``min(base * 2**k, cap)`` for ``k in range(retries)`` — a pure
    function of the attempt index, so the retry schedule never depends on
    wall-clock state and fault-injection tests can assert it exactly.
    """
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    if base <= 0 or cap <= 0:
        raise ValueError(f"backoff base and cap must be positive, got {base}, {cap}")
    return [min(base * (2.0 ** k), cap) for k in range(retries)]


def _rebuild_seed_seq(state) -> np.random.SeedSequence:
    # SeedSequence doesn't pickle portably across numpy versions; rebuild
    # the child from its entropy/spawn-key state.
    return np.random.SeedSequence(entropy=state["entropy"], spawn_key=state["spawn_key"])


def _run_job(args):
    """Worker: run one ``(config, seed-states)`` slice through its engine.

    Top-level so the process pool can pickle it.  The branch is on the
    *job's own* config — mixed-engine job lists (a sweep crossing an
    ``engine="auto"`` resolution boundary) dispatch each slice correctly.
    """
    config, states = args
    seqs = [_rebuild_seed_seq(state) for state in states]
    if config.resolved_engine == "batch":
        from repro.simulation.batch import run_protocol_batch

        return run_protocol_batch(config, seqs)
    return [run_flooding(config, seed_seq=seq) for seq in seqs]


def _child_states(config: FloodingConfig, n_trials: int) -> list:
    root = np.random.SeedSequence(config.seed)
    return [
        {"entropy": child.entropy, "spawn_key": child.spawn_key}
        for child in root.spawn(n_trials)
    ]


def _child_states_range(config: FloodingConfig, start: int, stop: int) -> list:
    """Seed states for trials ``[start, stop)`` of a configuration.

    ``SeedSequence.spawn`` keys children by index, so the state of trial
    ``i`` never depends on how many trials a run asks for — the property
    that makes sequential (adaptive / checkpoint-resumed) execution
    bit-identical to a single uninterrupted pass.
    """
    return _child_states(config, stop)[start:]


def _batch_jobs(config: FloodingConfig, states: list, max_workers) -> list:
    """Slice per-trial seed states into contiguous batch-per-worker jobs."""
    workers = max_workers if max_workers else (os.cpu_count() or 1)
    size = config.batch_size if config.batch_size > 0 else math.ceil(len(states) / workers)
    size = max(1, size)
    return [
        (config, states[start:start + size]) for start in range(0, len(states), size)
    ]


def _dispatch(
    runner,
    jobs: list,
    max_workers,
    labels: list | None = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    job_timeout: float | None = None,
) -> list:
    """Run one round of jobs through a throwaway fault-tolerant pool."""
    with WorkerPool(max_workers, max_retries=max_retries, job_timeout=job_timeout) as pool:
        return pool.map(runner, jobs, labels=labels)


class WorkerPool:
    """Reusable, crash-surviving job dispatcher.

    Keeps one :class:`~concurrent.futures.ProcessPoolExecutor` alive
    across rounds (created lazily on the first round with two or more
    jobs) and submits **per-job futures**, so one dead worker no longer
    poisons the whole round:

    * a :class:`~concurrent.futures.process.BrokenProcessPool` — an
      OOM-killed, segfaulted, or SIGKILLed child — costs only the jobs
      that had not finished; completed futures keep their results;
    * the pool is respawned and unfinished jobs are retried solo (one in
      flight at a time, which is what lets a crash name its job) on the
      deterministic backoff schedule of :func:`backoff_delays`;
    * a job that crashes ``max_retries + 1`` fresh pools in a row is
      quarantined via :class:`PoisonJobError`, which carries every
      completed result of the round;
    * with ``job_timeout`` set, a job overrunning it is treated exactly
      like a crash (the stuck workers are killed, the pool respawned).

    Single-job or single-worker rounds run in-process with none of the
    above — a crash there *is* the caller crashing.  Results always come
    back in job order; retries never change results because jobs are pure
    functions of their (config, seed-state) payload.

    Args:
        max_workers: worker processes; ``1`` never forks, ``None`` lets
            the executor pick.
        max_retries: solo crash retries per job before quarantine.
        job_timeout: optional per-job wall-clock ceiling in seconds;
            overruns are handled like worker crashes.
        backoff_base / backoff_cap: the :func:`backoff_delays` schedule.
        sleep: injection point for the backoff sleeper (tests).
    """

    def __init__(
        self,
        max_workers: int | None = 1,
        max_retries: int = DEFAULT_MAX_RETRIES,
        job_timeout: float | None = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        sleep=time.sleep,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError(f"job_timeout must be positive, got {job_timeout}")
        self.max_workers = max_workers
        self.max_retries = max_retries
        self.job_timeout = job_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._pool = None

    # -- pool lifecycle ------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _discard_pool(self) -> None:
        """Hard-stop a broken or overrun pool: kill workers, drop it."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # A worker stuck past job_timeout never exits on its own; kill()
        # is what turns "hung" into "respawnable".  _processes is executor
        # internals, but there is no public hard-stop.
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- dispatch ------------------------------------------------------
    def map(self, runner, jobs: list, labels: list | None = None) -> list:
        """Run one round of jobs; results in job order.

        Args:
            runner: picklable top-level callable applied to each job.
            labels: optional human-readable job descriptions, used in
                :class:`PoisonJobError` messages (default ``"job i"``).

        Raises:
            PoisonJobError: a job repeatedly killed its workers; every
                other job's result is on the error's ``completed``.
        """
        jobs = list(jobs)
        if labels is None:
            labels = [f"job {index}" for index in range(len(jobs))]
        if len(jobs) <= 1 or self.max_workers == 1:
            return [runner(job) for job in jobs]
        results = {}
        crashed = self._map_parallel(runner, jobs, results)
        if crashed:
            poisoned = self._retry_serially(runner, jobs, labels, results)
            if poisoned:
                lines = ", ".join(
                    f"{label} (killed {attempts} fresh worker pools)"
                    for _, label, attempts in poisoned
                )
                raise PoisonJobError(
                    f"poison job quarantined after repeated worker crashes: {lines}; "
                    "every other job of this round completed (results on "
                    "error.completed) — fix or exclude the offending configuration "
                    "and re-run",
                    poisoned,
                    results,
                )
        return [results[index] for index in range(len(jobs))]

    def _map_parallel(self, runner, jobs: list, results: dict) -> bool:
        """Fast path: all jobs in flight at once.

        Fills ``results`` with whatever finishes; returns ``True`` when
        the pool broke or a job overran ``job_timeout`` (the unfinished
        jobs are the caller's to retry), ``False`` on a clean round.
        """
        try:
            pool = self._ensure_pool()
            futures = {
                pool.submit(runner, jobs[index]): index
                for index in range(len(jobs))
                if index not in results
            }
        except BrokenProcessPool:
            self._discard_pool()
            return True
        deadlines = None
        if self.job_timeout is not None:
            deadlines = {future: time.monotonic() + self.job_timeout for future in futures}
        not_done = set(futures)
        while not_done:
            timeout = None
            if deadlines is not None:
                timeout = max(
                    0.0, min(deadlines[f] for f in not_done) - time.monotonic()
                )
            done, not_done = wait(not_done, timeout=timeout, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    results[futures[future]] = future.result()
                except BrokenProcessPool:
                    self._discard_pool()
                    return True
                # Ordinary exceptions are deterministic job failures, not
                # infrastructure faults: they propagate to the caller
                # exactly as before, never retried.
            if deadlines is not None and not_done:
                now = time.monotonic()
                if any(now >= deadlines[future] for future in not_done):
                    self._discard_pool()
                    return True
        return False

    def _retry_serially(self, runner, jobs: list, labels: list, results: dict) -> list:
        """Careful path after a break: one job in flight per fresh pool.

        A broken pool cannot attribute the kill, so each unfinished job
        re-runs solo — a crash now names its job definitively, and
        innocent bystanders of the original break complete on their first
        solo pass without consuming retries.
        """
        delays = backoff_delays(self.max_retries, self.backoff_base, self.backoff_cap)
        poisoned = []
        for index in range(len(jobs)):
            if index in results:
                continue
            attempts = 0
            while True:
                attempts += 1
                try:
                    results[index] = self._run_single(runner, jobs[index])
                    break
                except _JobCrash:
                    self._discard_pool()
                    if attempts > self.max_retries:
                        poisoned.append((index, labels[index], attempts))
                        break
                    self._sleep(delays[attempts - 1])
        return poisoned

    def _run_single(self, runner, job):
        future = self._ensure_pool().submit(runner, job)
        try:
            return future.result(timeout=self.job_timeout)
        except BrokenProcessPool as error:
            raise _JobCrash("worker process died") from error
        except FuturesTimeoutError as error:
            raise _JobCrash(
                f"job exceeded its {self.job_timeout}s timeout"
            ) from error


def run_trials_parallel(
    config: FloodingConfig,
    n_trials: int,
    max_workers: int = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    job_timeout: float | None = None,
) -> list:
    """Parallel version of :func:`repro.simulation.runner.run_trials`.

    Results are returned in trial order and match the serial runner exactly
    (same seed schedule), for both engines.  Worker crashes are retried per
    job (see :class:`WorkerPool`); results never depend on the fault
    history.

    Args:
        max_workers: process count (default: executor's choice).
        max_retries: solo crash retries per job before quarantine.
        job_timeout: optional per-job wall-clock ceiling in seconds.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    states = _child_states(config, n_trials)
    if config.resolved_engine == "batch":
        jobs = _batch_jobs(config, states, max_workers)
    else:
        jobs = [(config, [state]) for state in states]
    groups = _dispatch(
        _run_job, jobs, max_workers, max_retries=max_retries, job_timeout=job_timeout
    )
    return [result for group in groups for result in group]


def sweep_parallel(
    config: FloodingConfig,
    parameter: str,
    values,
    n_trials: int = 5,
    max_workers: int = None,
) -> list:
    """Parallel version of :func:`repro.simulation.runner.sweep`.

    All (value, trial) jobs share one process pool.  Each variant's jobs
    follow the **variant's** resolved engine — batch-per-worker slices for
    batch variants, one trial per job for scalar ones — so a sweep that
    crosses an ``engine="auto"`` resolution boundary (e.g. a mobility
    sweep from a native model to ferry) dispatches every variant through
    the engine its own configuration resolves to.

    Returns:
        list of ``(value, TrialSummary, results)`` tuples, in input order.
    """
    values = list(values)
    jobs = []
    bounds = []
    for value in values:
        variant = config.with_options(**{parameter: value})
        states = _child_states(variant, n_trials)
        if variant.resolved_engine == "batch":
            variant_jobs = _batch_jobs(variant, states, max_workers)
        else:
            variant_jobs = [(variant, [state]) for state in states]
        start = len(jobs)
        jobs.extend(variant_jobs)
        bounds.append((value, start, start + len(variant_jobs)))
    groups = _dispatch(_run_job, jobs, max_workers)
    out = []
    for value, start, end in bounds:
        chunk = [result for group in groups[start:end] for result in group]
        out.append((value, summarize(r.flooding_time for r in chunk), chunk))
    return out
