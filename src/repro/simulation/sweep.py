"""Sweep scheduler: whole parameter sweeps as batched, parallel work units.

Every quantitative claim of the paper is a parameter *sweep* — flooding
times across ``n`` (Theorem 3 scaling), across ``R`` and ``v``, across
mobility models and source placements.  Before this module each experiment
walked its grid point-by-point through :func:`~repro.simulation.runner
.run_trials`; the scheduler turns a grid into a first-class work plan:

* a :class:`SweepPlan` collects :class:`SweepPoint` entries — one
  ``(config, n_trials)`` pair per grid point, with an opaque ``key`` the
  caller uses to find the point again in the output;
* the **seed schedule is deterministic per point** and identical to
  :func:`~repro.simulation.runner.run_trials`:
  ``SeedSequence(config.seed).spawn(n_trials)`` — so scheduling a sweep is
  bit-for-bit equivalent to hand-looping ``run_trials`` over its points
  (enforced by ``tests/test_simulation_sweep.py``);
* **identical configurations are deduplicated**: duplicate points execute
  once, and a point asking for fewer trials of a config another point also
  sweeps receives a prefix of the shared trial sequence (seed-schedule
  prefixes are stable under ``SeedSequence.spawn``).  Config identity is
  the canonical fingerprint of
  :func:`~repro.simulation.checkpoint.config_fingerprint`, which
  serializes dict-valued fields with sorted keys — two configs differing
  only in ``neighbor_options`` insertion order share trials;
* each point dispatches through the configured **execution engine**
  (``engine="auto"`` resolves to the vectorized batch engine whenever both
  the protocol and the mobility model have native batched implementations)
  in batch slices, exactly like ``run_trials``;
* ``jobs=`` fans the work units out over processes via the worker
  machinery of :mod:`repro.simulation.parallel` — batch points ship one
  batch slice per job, scalar points one trial per job, all sharing one
  pool;
* points may attach **per-trial observers** (``observer_factory``), which
  forces the scalar engine for that point only (observers need the
  step-by-step :class:`~repro.simulation.engine.Simulation`); the observers
  ride back on ``FloodingResult.extras["observers"]``.

**Adaptive sampling.**  A :class:`StoppingRule` (per point, or sweep-wide
via ``run_sweep(stopping=...)``) switches a point from a fixed trial count
to *sequential stopping*: trials run in batches until the relative
confidence-interval half-width undercuts a target (or the trial cap is
hit), so converged points stop early and the interesting ones — the
regime-map boundary, threshold radii — keep sampling.  With
``trial_budget=`` the scheduler additionally reallocates a global trial
budget each round toward the neediest unfinished points, ranked by a
GreenPod-style TOPSIS score over CI width, completion deficit, and
per-trial cost.  Adaptive results are always a **bit-exact prefix** of the
fixed-budget run (same seed schedule); fixed-budget mode — the default —
is byte-identical to the pre-adaptive scheduler.

**Checkpoint / resume.**  ``checkpoint=DIR`` persists every point's
partial results atomically after each trial batch
(:class:`~repro.simulation.checkpoint.SweepCheckpoint`);
``resume=True`` continues a killed, crashed, or budget-capped run
bit-exactly — trial ``i`` of a point always draws seed child ``i``, so the
segmentation of a run is invisible in its results (enforced by the
fault-injection tests in ``tests/test_sweep_checkpoint.py``).

**Fault tolerance & distribution.**  Worker crashes inside a round lose
only the affected jobs: the pool respawns, survivors' results are kept,
and the crashed jobs are retried solo on a deterministic backoff schedule
(:mod:`repro.simulation.parallel`).  A job that keeps killing fresh pools
is quarantined as a *poison job* — every completed trial is persisted
first, a sticky ``poison_NNNN.json`` marker blocks silent retries, and the
raised :class:`~repro.simulation.parallel.PoisonJobError` names the sweep
point, trial range, seed, and the marker to delete for a retry.  With
``lease_ttl=`` (and a shared ``checkpoint=``), N independent invocations
drain one plan **cooperatively** through the group-level lease protocol of
:mod:`repro.simulation.lease`: each worker leases the groups it executes,
re-syncs the others from the store every round, and reclaims groups whose
owner stopped heartbeating past the TTL — a SIGKILLed worker costs one
TTL, not the run.  ``workers=N`` self-spawns such a fleet in-process.  The
final tables stay byte-identical to a solo run in every case (same seed
schedule, same stopping-rule evaluation grid).

The output is point-indexed: one :class:`SweepPointResult` per input point
(in input order) carrying the raw results, the
:class:`~repro.simulation.results.TrialSummary`, and per-point completion
fractions — so callers stop silently averaging the finite subset and can
mask under-completed points.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.simulation.checkpoint import SweepCheckpoint, config_fingerprint
from repro.simulation.config import FloodingConfig
from repro.simulation.lease import DEFAULT_LEASE_TTL, LeaseError, LeaseManager
from repro.simulation.parallel import (
    DEFAULT_MAX_RETRIES,
    PoisonJobError,
    WorkerPool,
    _child_states,
    _child_states_range,
    _dispatch,
    _rebuild_seed_seq,
)
from repro.simulation.results import TrialSummary, summarize

__all__ = [
    "StoppingRule",
    "SweepPoint",
    "SweepPointResult",
    "SweepPlan",
    "run_sweep",
]


@dataclass(frozen=True)
class StoppingRule:
    """Sequential-stopping policy for one sweep point.

    A point under a stopping rule runs its first ``min_trials`` trials,
    then keeps appending batches of ``batch`` trials until either the
    normal-approximation confidence interval of the mean flooding time is
    narrow enough — relative half-width ``(ci_high - ci_low) / 2 / mean``
    at or below ``ci_width`` — or ``max_trials`` is reached.  The CI is
    only trusted once at least two trials finished (``n_finite >= 2``);
    until then the point keeps sampling.

    ``min_trials`` / ``max_trials`` left as ``None`` resolve against the
    point's own ``n_trials`` (its fixed budget): the minimum defaults to
    ``min(2, n_trials)`` and the cap to ``n_trials`` — so attaching a rule
    to an existing sweep can only *save* trials, never change the
    available seed schedule, and the adaptive result is a bit-exact prefix
    of the fixed-budget result.

    Attributes:
        ci_width: relative CI half-width target (e.g. ``0.1`` = stop once
            the mean is known to ±10%).  Compared absolutely when the mean
            is zero.
        min_trials: trials always run before the rule may fire (``None``:
            ``min(2, n_trials)``).  The rule never stops below this floor.
        max_trials: hard trial cap (``None``: the point's ``n_trials``).
        batch: trials appended per sequential round after the minimum.
        confidence: confidence level of the interval (0.90 / 0.95 / 0.99
            supported by :func:`~repro.simulation.results.summarize`).
    """

    ci_width: float = 0.1
    min_trials: int | None = None
    max_trials: int | None = None
    batch: int = 2
    confidence: float = 0.95

    def __post_init__(self):
        if not self.ci_width > 0:
            raise ValueError(f"ci_width must be positive, got {self.ci_width}")
        if self.batch < 1:
            raise ValueError(f"batch must be a positive trial count, got {self.batch}")
        if self.min_trials is not None and self.min_trials < 1:
            raise ValueError(f"min_trials must be positive, got {self.min_trials}")
        if self.max_trials is not None and self.max_trials < 1:
            raise ValueError(f"max_trials must be positive, got {self.max_trials}")
        if (
            self.min_trials is not None
            and self.max_trials is not None
            and self.min_trials > self.max_trials
        ):
            raise ValueError(
                f"min_trials ({self.min_trials}) must not exceed max_trials "
                f"({self.max_trials})"
            )
        if not 0 < self.confidence < 1:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")

    def bounds(self, n_trials: int) -> tuple:
        """``(minimum, cap)`` resolved against a point's fixed budget."""
        lo = self.min_trials if self.min_trials is not None else min(2, n_trials)
        hi = self.max_trials if self.max_trials is not None else n_trials
        return lo, max(lo, hi)

    def should_stop(self, summary: TrialSummary, lo: int, hi: int) -> bool:
        """Whether a point with this summary stops sampling.

        Args:
            summary: aggregation of the trials run so far (computed at
                this rule's ``confidence``).
            lo: resolved minimum trial count (never stop below it).
            hi: resolved trial cap (always stop at it).
        """
        n = summary.n_trials
        if n < lo:
            return False
        if n >= hi:
            return True
        if summary.n_finite < 2:
            return False
        half = (summary.ci_high - summary.ci_low) / 2.0
        if summary.mean > 0:
            return half / summary.mean <= self.ci_width
        return half <= self.ci_width

    def trials_until_stop(self, values, n_trials: int | None = None) -> int:
        """The trial count at which this rule first fires on a value stream.

        Simulates the scheduler's accumulation — ``lo`` trials, then
        batches of ``batch`` — over a fixed sequence of flooding times.
        The property-test surface: deterministic for a fixed sequence,
        never below the minimum, monotone in the target width.

        Args:
            values: per-trial flooding times, in seed order (must cover
                the cap).
            n_trials: fixed budget the bounds resolve against (default:
                ``len(values)``).
        """
        values = list(values)
        if n_trials is None:
            n_trials = len(values)
        lo, hi = self.bounds(n_trials)
        if hi > len(values):
            raise ValueError(
                f"need at least {hi} values to simulate the rule, got {len(values)}"
            )
        n = lo
        while True:
            if self.should_stop(summarize(values[:n], confidence=self.confidence), lo, hi):
                return n
            n = min(n + self.batch, hi)


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a sweep: a configuration and a trial count.

    Attributes:
        config: the fully-specified experiment parameters.
        n_trials: independent repetitions (seed schedule:
            ``SeedSequence(config.seed).spawn(n_trials)``, as in
            ``run_trials``).  Under a stopping rule this is the *fixed
            budget* the rule's default bounds resolve against.
        key: opaque caller label (the swept value, a tuple, ...) echoed on
            the matching :class:`SweepPointResult`.
        observer_factory: optional picklable callable
            ``factory(config) -> list`` building fresh per-trial observers
            (:class:`~repro.simulation.engine.Simulation` observer
            protocol).  Forces the scalar engine for this point; observer
            results are not checkpointed (recomputed on resume).
        stopping: optional per-point :class:`StoppingRule`, overriding the
            sweep-wide rule passed to :func:`run_sweep`.
    """

    config: FloodingConfig
    n_trials: int
    key: object = None
    observer_factory: object = None
    stopping: StoppingRule | None = None

    def __post_init__(self):
        if not isinstance(self.config, FloodingConfig):
            raise TypeError(f"config must be a FloodingConfig, got {type(self.config).__name__}")
        if self.n_trials < 1:
            raise ValueError(f"n_trials must be positive, got {self.n_trials}")
        if self.observer_factory is not None and not callable(self.observer_factory):
            raise TypeError("observer_factory must be callable")
        if self.stopping is not None and not isinstance(self.stopping, StoppingRule):
            raise TypeError(
                f"stopping must be a StoppingRule, got {type(self.stopping).__name__}"
            )


@dataclass
class SweepPointResult:
    """Executed point: raw results plus point-level aggregation.

    Attributes:
        key: the input point's label.
        config: the configuration **as executed** (engine override applied).
        n_trials: trials this point actually ran (``len(results)`` — under
            a stopping rule this is where the rule stopped, otherwise the
            requested fixed budget).
        engine: engine that actually ran the trials (``"scalar"`` or
            ``"batch"`` — never ``"auto"``).
        results: per-trial :class:`~repro.simulation.results.FloodingResult`
            in seed order.
        summary: flooding-time aggregation over the trials.
    """

    key: object
    config: FloodingConfig
    n_trials: int
    engine: str
    results: list = field(default_factory=list)
    summary: TrialSummary = None

    @property
    def completed_fraction(self) -> float:
        """Fraction of trials that reached full coverage."""
        return sum(1 for r in self.results if r.completed) / self.n_trials

    @property
    def finite_fraction(self) -> float:
        """Fraction of trials with a finite flooding time."""
        return self.summary.n_finite / self.summary.n_trials

    @property
    def completion_label(self) -> str:
        """``"finite/total"`` rendering for tables (e.g. ``"3/3"``)."""
        return f"{self.summary.n_finite}/{self.summary.n_trials}"

    @property
    def mean(self) -> float:
        """Mean finite flooding time (NaN when no trial finished)."""
        return self.summary.mean

    def masked_mean(self, min_finite_fraction: float = 0.5) -> float:
        """Mean flooding time, masked to NaN below a finite-trial floor.

        The unmasked ``summary.mean`` silently averages whichever subset
        happened to finish; this helper makes the bias explicit by
        refusing to report a moment when fewer than
        ``min_finite_fraction`` of the trials completed.
        """
        if self.finite_fraction < min_finite_fraction:
            return math.nan
        return self.summary.mean

    def observers(self, index: int = 0) -> list:
        """The per-trial observers built by the point's factory.

        Args:
            index: which observer of the factory's list to collect.

        Returns:
            one observer per trial, in seed order.
        """
        return [r.extras["observers"][index] for r in self.results]


class SweepPlan:
    """An ordered collection of sweep points."""

    def __init__(self, points=()):
        self.points = []
        for point in points:
            if isinstance(point, SweepPoint):
                self.points.append(point)
            else:  # (config, n_trials[, key]) tuples for convenience
                self.points.append(SweepPoint(*point))

    def add(
        self,
        config: FloodingConfig,
        n_trials: int,
        key=None,
        observer_factory=None,
        stopping: StoppingRule | None = None,
    ) -> SweepPoint:
        """Append a point; returns it (its ``key`` indexes the output)."""
        point = SweepPoint(
            config, n_trials, key=key, observer_factory=observer_factory, stopping=stopping
        )
        self.points.append(point)
        return point

    @classmethod
    def over_parameter(
        cls, config: FloodingConfig, parameter: str, values, n_trials: int = 5
    ) -> "SweepPlan":
        """The classic one-parameter sweep: one point per value, keyed by it."""
        plan = cls()
        for value in values:
            plan.add(config.with_options(**{parameter: value}), n_trials, key=value)
        return plan

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)


def _run_sweep_job(args) -> list:
    """Worker: execute one job — a (config, seed-states, factory) slice.

    Top-level so the process pool can pickle it; batch jobs carry a whole
    trial slice, scalar jobs a single trial each.
    """
    config, states, factory = args
    seqs = [_rebuild_seed_seq(state) for state in states]
    if factory is None and config.resolved_engine == "batch":
        from repro.simulation.batch import run_protocol_batch

        return run_protocol_batch(config, seqs)
    from repro.simulation.runner import run_flooding

    out = []
    for seq in seqs:
        extra = list(factory(config)) if factory is not None else None
        out.append(run_flooding(config, seed_seq=seq, extra_observers=extra))
    return out


def _group_keys(points, point_group, n_groups: int) -> list:
    """Per-group point keys, for labels and quarantine diagnostics."""
    keys = [[] for _ in range(n_groups)]
    for point, gid in zip(points, point_group):
        keys[gid].append(point.key)
    return keys


def _job_label(gid: int, keys: list, config, lo: int, hi: int) -> str:
    """Human-readable job description for crash/poison diagnostics.

    Names everything a human needs to reproduce or exclude the job: the
    group, the sweep-point keys it feeds, the trial range, and the seed
    the trial schedule derives from.
    """
    shown = ", ".join(repr(key) for key in keys[:3])
    if len(keys) > 3:
        shown += f", ... ({len(keys)} points)"
    return (
        f"sweep group {gid} (point key(s) {shown}): trials {lo}..{hi - 1} "
        f"of seed {config.seed}"
    )


def _executed_config(point: SweepPoint, engine) -> FloodingConfig:
    """Apply the sweep-level engine override and the observer constraint."""
    config = point.config
    if engine is not None:
        config = config.with_options(engine=engine)
    if point.observer_factory is not None:
        if config.engine == "batch":
            raise ValueError(
                f"point {point.key!r} attaches observers, which require the scalar "
                "engine; use engine='auto' or 'scalar' for observer points"
            )
        if config.engine != "scalar":  # "auto": observers resolve it to scalar
            config = config.with_options(engine="scalar")
    return config


def _build_groups(points, engine, stopping) -> tuple:
    """Dedup pass: one execution group per distinct (config, factory, rule).

    Grouping is keyed by the canonical config fingerprint
    (:func:`~repro.simulation.checkpoint.config_fingerprint`), so configs
    that differ only in dict-field key order — which compare equal — share
    one trial sequence.  Observer factories group by identity (the
    pre-fingerprint behaviour); stopping rules by value.
    """
    groups = []
    point_group = []
    by_key = {}
    for point in points:
        config = _executed_config(point, engine)
        rule = point.stopping if point.stopping is not None else stopping
        fingerprint = config_fingerprint(config)
        factory = point.observer_factory
        key = (fingerprint, None if factory is None else id(factory), rule)
        gid = by_key.get(key)
        if gid is None:
            by_key[key] = gid = len(groups)
            groups.append(
                {
                    "config": config,
                    "factory": factory,
                    "n_trials": point.n_trials,
                    "rule": rule,
                    "fingerprint": fingerprint,
                }
            )
        else:
            groups[gid]["n_trials"] = max(groups[gid]["n_trials"], point.n_trials)
        point_group.append(gid)
    return groups, point_group


def _batch_slices(config, states, want, batch_size, workers) -> list:
    """Slice a batch-engine group's seed states into job tuples.

    Deliberately NOT parallel._batch_jobs: that helper always divides by
    the worker count, while a serial sweep must keep one slice per point
    to mirror run_trials' single-batch layout (slicing is result-invariant
    either way; this is about memory and per-batch fixed costs).
    """
    size = batch_size if batch_size is not None else config.batch_size
    if size <= 0:
        size = want if workers <= 1 else math.ceil(want / workers)
    size = max(1, size)
    return [(config, states[lo:lo + size], None) for lo in range(0, want, size)]


def _assemble(points, point_group, groups) -> list:
    """Point-indexed results: fixed points take their prefix, adaptive all."""
    out = []
    for point, gid in zip(points, point_group):
        group = groups[gid]
        if group["rule"] is None:
            results = group["results"][: point.n_trials]
        else:
            results = list(group["results"])
        engine_used = "scalar" if group["factory"] is not None else group["config"].resolved_engine
        out.append(
            SweepPointResult(
                key=point.key,
                config=group["config"],
                n_trials=len(results),
                engine=engine_used,
                results=results,
                summary=summarize(r.flooding_time for r in results),
            )
        )
    return out


def _run_single_pass(
    points, point_group, groups, jobs, batch_size, retries, job_timeout
) -> list:
    """The fixed-budget fast path: one job list, one dispatch, no rounds."""
    workers = jobs if jobs is not None else (os.cpu_count() or 1)
    group_keys = _group_keys(points, point_group, len(groups))
    job_list = []
    labels = []
    bounds = []  # per group: (start, end) into job_list
    for gid, group in enumerate(groups):
        config = group["config"]
        states = _child_states(config, group["n_trials"])
        start = len(job_list)
        if group["factory"] is None and config.resolved_engine == "batch":
            job_list.extend(
                _batch_slices(config, states, len(states), batch_size, workers)
            )
        else:
            job_list.extend((config, [state], group["factory"]) for state in states)
        offset = 0
        for job in job_list[start:]:
            labels.append(
                _job_label(gid, group_keys[gid], config, offset, offset + len(job[1]))
            )
            offset += len(job[1])
        bounds.append((start, len(job_list)))

    job_results = _dispatch(
        _run_sweep_job, job_list, jobs,
        labels=labels, max_retries=retries, job_timeout=job_timeout,
    )

    for group, (start, end) in zip(groups, bounds):
        group["results"] = [result for job in job_results[start:end] for result in job]
    return _assemble(points, point_group, groups)


def _group_finished(group) -> bool:
    """Whether a group needs no further trials (cap, target, or rule)."""
    n = len(group["results"])
    if n >= group["hi"]:
        return True
    if n < group["lo"]:
        return False
    rule = group["rule"]
    if rule is None:
        return n >= group["hi"]
    summary = summarize(
        (r.flooding_time for r in group["results"]), confidence=rule.confidence
    )
    return rule.should_stop(summary, group["lo"], group["hi"])


def _topsis(matrix: np.ndarray, benefit: tuple) -> np.ndarray:
    """TOPSIS scores in [0, 1]: closeness to the ideal candidate.

    Each row is a candidate, each column a criterion; ``benefit[j]`` marks
    whether criterion ``j`` is better high (True) or low (False).  Equal
    weights; vector-normalized.  The GreenPod scheduling template from
    PAPERS.md, reduced to the three criteria the sweep needs.
    """
    m = np.asarray(matrix, dtype=np.float64)
    norms = np.sqrt((m * m).sum(axis=0))
    norms[norms == 0.0] = 1.0
    v = m / norms
    benefit = np.asarray(benefit, dtype=bool)
    ideal = np.where(benefit, v.max(axis=0), v.min(axis=0))
    worst = np.where(benefit, v.min(axis=0), v.max(axis=0))
    d_ideal = np.sqrt(((v - ideal) ** 2).sum(axis=1))
    d_worst = np.sqrt(((v - worst) ** 2).sum(axis=1))
    denom = d_ideal + d_worst
    denom[denom == 0.0] = 1.0
    return d_worst / denom


def _reallocation_scores(candidates: list) -> np.ndarray:
    """Who deserves the next trial batch: a multi-criteria need score.

    Criteria per unfinished group: relative CI half-width (high = the
    mean is still uncertain — the regime-boundary points), completion
    deficit (high = trials keep timing out, the mean is biased toward the
    easy subset), and mean per-trial cost in steps (low = cheap to refine).
    """
    rows = []
    for group in candidates:
        results = group["results"]
        summary = summarize(r.flooding_time for r in results)
        if summary.n_finite >= 2 and summary.mean > 0:
            need = min((summary.ci_high - summary.ci_low) / 2.0 / summary.mean, 1.0)
        else:
            need = 1.0  # no trusted CI yet: maximal need
        n = max(summary.n_trials, 1)
        deficit = 1.0 - summary.n_finite / n
        cost = sum(r.n_steps for r in results) / n if results else 1.0
        rows.append([need, deficit, cost])
    return _topsis(np.asarray(rows), benefit=(True, True, False))


def _allocate_round(groups, budget_left) -> list:
    """Next round's ``(group_id, n_new_trials)`` allocations.

    Below-minimum groups are funded first and unconditionally (a stopping
    rule never fires below its floor, and fixed-budget groups must always
    reach their requested count).  Remaining budget then flows to
    unfinished groups one rule-batch at a time, neediest first by the
    TOPSIS score — deterministic (ties break on plan order), so trial
    counts at a fixed seed never depend on timing.
    """
    wants = [
        (gid, group["lo"] - len(group["results"]))
        for gid, group in enumerate(groups)
        if not group["done"] and len(group["results"]) < group["lo"]
    ]
    if wants:
        return wants
    candidates = [gid for gid, group in enumerate(groups) if not group["done"]]
    if not candidates or (budget_left is not None and budget_left <= 0):
        return []
    if len(candidates) > 1:
        scores = _reallocation_scores([groups[gid] for gid in candidates])
        candidates = [
            gid for _, gid in sorted(zip(-scores, candidates), key=lambda t: (t[0], t[1]))
        ]
    wants = []
    left = budget_left
    for gid in candidates:
        group = groups[gid]
        batch = group["rule"].batch if group["rule"] is not None else group["hi"]
        want = min(batch, group["hi"] - len(group["results"]))
        if left is not None:
            if left <= 0:
                break
            want = min(want, left)
            left -= want
        if want > 0:
            wants.append((gid, want))
    return wants


def _group_want(group) -> int:
    """How many trials the allocator would schedule this group next.

    Mirrors :func:`_allocate_round`'s per-group arithmetic — fund the
    minimum first, then one rule batch at a time — so a cooperative worker
    re-reading a group after a lease takeover schedules exactly the round
    the solo scheduler would have, keeping the stopping-rule evaluation
    grid (``lo``, ``lo + batch``, ...) identical across workers.
    """
    n = len(group["results"])
    if n < group["lo"]:
        return group["lo"] - n
    if _group_finished(group):
        return 0
    batch = group["rule"].batch if group["rule"] is not None else group["hi"]
    return min(batch, group["hi"] - n)


def _sync_from_store(store, groups, lease) -> None:
    """Pick up other workers' committed progress (cooperative mode).

    Groups this worker leases are authoritative locally (it heartbeats
    before every persist, so its view cannot be behind the store); every
    other group re-reads the checkpoint, taking the longer prefix.  The
    seed schedule keys trial ``i`` to seed child ``i`` regardless of who
    computed it, so "longer prefix" is the only comparison needed —
    concurrent views never diverge, they only differ in length.
    """
    for gid, group in enumerate(groups):
        if group["factory"] is not None or lease.owns(gid):
            continue
        loaded = store.load_group(gid, group["fingerprint"], group["config"])
        if len(loaded) > len(group["results"]):
            group["results"] = loaded[: group["hi"]]


def _lease_wants(wants, groups, store, lease) -> list:
    """Filter a round's allocations to the groups this worker may run.

    Owned leases pass through; at most **one** new lease is acquired per
    round, so a worker joining a shared plan takes one group at a time
    instead of claiming the whole frontier ahead of its peers.  A newly
    acquired group is re-read from the store first — its previous owner
    may have committed more trials between our sync and the takeover —
    and its want recomputed (releasing the lease again if the group turns
    out finished).
    """
    mine = []
    acquired = False
    for gid, want in wants:
        if lease.owns(gid):
            mine.append((gid, want))
            continue
        if acquired or not lease.acquire(gid):
            continue
        group = groups[gid]
        loaded = store.load_group(gid, group["fingerprint"], group["config"])
        if len(loaded) > len(group["results"]):
            group["results"] = loaded[: group["hi"]]
        want = _group_want(group)
        if want <= 0:
            group["done"] = _group_finished(group)
            lease.release(gid)
            continue
        acquired = True
        mine.append((gid, want))
    return mine


def _raise_if_quarantined(store, groups, group_keys) -> None:
    """Fail fast on a sticky poison-quarantine marker from any worker/run."""
    for gid in range(len(groups)):
        marker = store.load_poison(gid)
        if marker is None:
            continue
        jobs = marker.get("jobs") or []
        detail = "; ".join(
            f"{job.get('label', f'group {gid}')} "
            f"(killed {job.get('attempts', '?')} fresh worker pools)"
            for job in jobs
        )
        keys = ", ".join(marker.get("keys") or [repr(k) for k in group_keys[gid]])
        raise PoisonJobError(
            f"sweep group {gid} (point key(s) {keys}, seed "
            f"{marker.get('seed')}) is quarantined as a poison job by a previous "
            f"run: {detail or 'no job detail recorded'}; fix or exclude the "
            f"offending configuration, then delete {marker['path']} to retry",
            [(gid, job.get("label", f"group {gid}"), job.get("attempts", 0)) for job in jobs],
            {},
        )


def _quarantine_poison(error, spans, job_meta, groups, group_keys, store, lease) -> None:
    """Salvage a poisoned round, mark the culprits, re-raise with context.

    Completed results are persisted as far as each group's **contiguous
    prefix** reaches (the checkpoint format is prefix-shaped: trial ``i``
    can only be stored once ``0..i-1`` are), a sticky quarantine marker is
    written per poisoned group, and the :class:`PoisonJobError` is
    re-raised naming the sweep points, trial ranges, seeds, and the marker
    files to delete for a retry.  Never returns.
    """
    poisoned_by_index = {index: (label, attempts) for index, label, attempts in error.jobs}
    lines = []
    for gid, start, end in spans:
        group = groups[gid]
        prefix = []
        for index in range(start, end):
            if index not in error.completed:
                break
            prefix.extend(error.completed[index])
        if prefix:
            try:
                if lease is not None:
                    lease.heartbeat(gid)
                group["results"].extend(prefix)
                if store is not None and group["factory"] is None:
                    store.write_group(gid, group["fingerprint"], group["results"])
            except LeaseError:
                pass  # lease reclaimed: the thief recomputes these trials
        bad = [
            (index, *poisoned_by_index[index])
            for index in range(start, end)
            if index in poisoned_by_index
        ]
        if not bad:
            continue
        entries = [
            {
                "label": label,
                "attempts": attempts,
                "trial_start": job_meta[index][1],
                "trial_stop": job_meta[index][2],
            }
            for index, label, attempts in bad
        ]
        detail = "; ".join(
            f"{entry['label']} (killed {entry['attempts']} fresh worker pools)"
            for entry in entries
        )
        if store is not None:
            path = store.write_poison(
                gid,
                {
                    "group": gid,
                    "keys": [repr(key) for key in group_keys[gid]],
                    "seed": group["config"].seed,
                    "jobs": entries,
                },
            )
            detail += (
                f"; quarantine marker {path} written — fix or exclude the "
                "configuration, then delete the marker to retry"
            )
        lines.append(detail)
    if lease is not None:
        lease.release_all()
    suffix = (
        "; every completed trial of this round was persisted to the checkpoint"
        if store is not None
        else ""
    )
    raise PoisonJobError(
        "poison job(s) quarantined: " + " | ".join(lines) + suffix,
        error.jobs,
        error.completed,
    ) from error


def _run_sequential(
    points, point_group, groups, jobs, batch_size, checkpoint, resume,
    trial_budget, lease_ttl, worker_id, retries, job_timeout,
) -> list:
    """Round-based scheduler: adaptive stopping, checkpoint/resume, leases.

    Each round allocates new trials per group (:func:`_allocate_round`),
    dispatches them over one shared worker pool, appends the results in
    seed order, atomically persists every touched group, and re-evaluates
    the stopping rules.  Trial ``i`` of a group always draws seed child
    ``i`` (:func:`~repro.simulation.parallel._child_states_range`), so the
    round structure — and any crash/resume boundary — is invisible in the
    results.

    With ``lease_ttl`` set the loop runs **cooperatively**: each round it
    re-syncs non-owned groups from the shared checkpoint, filters its
    allocations through the lease table (acquiring at most one new group
    per round), heartbeats every owned lease before persisting, releases
    finished groups, and — when every runnable group is leased elsewhere —
    sleeps briefly instead of breaking, until the plan is drained.  Lease
    loss (:class:`~repro.simulation.lease.LeaseError`) discards that
    group's uncommitted round; the reclaiming worker recomputes the same
    trials bit-exactly.
    """
    workers = jobs if jobs is not None else (os.cpu_count() or 1)
    group_keys = _group_keys(points, point_group, len(groups))
    store = None
    lease = None
    if checkpoint is not None:
        store = SweepCheckpoint(checkpoint)
        store.open(
            [group["fingerprint"] for group in groups],
            resume=resume,
            cooperative=lease_ttl is not None,
        )
        if lease_ttl is not None:
            lease = LeaseManager(checkpoint, ttl=lease_ttl, owner=worker_id)
    poll = 0.05 if lease_ttl is None else max(0.05, min(0.5, lease_ttl / 5.0))

    for gid, group in enumerate(groups):
        rule = group["rule"]
        if rule is None:
            group["lo"] = group["hi"] = group["n_trials"]
        else:
            group["lo"], group["hi"] = rule.bounds(group["n_trials"])
        group["results"] = []
        if store is not None and group["factory"] is None:
            loaded = store.load_group(gid, group["fingerprint"], group["config"])
            group["results"] = loaded[: group["hi"]]
        group["done"] = False

    budget_left = None
    if trial_budget is not None:
        budget_left = max(0, trial_budget - sum(len(g["results"]) for g in groups))

    try:
        with WorkerPool(jobs, max_retries=retries, job_timeout=job_timeout) as pool:
            while True:
                if store is not None:
                    _raise_if_quarantined(store, groups, group_keys)
                if lease is not None:
                    _sync_from_store(store, groups, lease)
                for group in groups:
                    group["done"] = _group_finished(group)
                if lease is not None:
                    for gid, group in enumerate(groups):
                        if group["done"]:
                            lease.release(gid)
                wants = _allocate_round(groups, budget_left)
                if not wants:
                    break
                if lease is not None:
                    wants = _lease_wants(wants, groups, store, lease)
                    if not wants:
                        # Every runnable group is leased by a live peer:
                        # wait for releases (or TTL expiries) and re-sync.
                        time.sleep(poll)
                        continue
                job_list = []
                labels = []
                job_meta = []  # per job: (gid, trial_lo, trial_hi)
                spans = []  # (gid, start, end) into job_list
                for gid, want in wants:
                    group = groups[gid]
                    config = group["config"]
                    done_trials = len(group["results"])
                    states = _child_states_range(config, done_trials, done_trials + want)
                    start = len(job_list)
                    if group["factory"] is None and config.resolved_engine == "batch":
                        job_list.extend(_batch_slices(config, states, want, batch_size, workers))
                    else:
                        job_list.extend((config, [state], group["factory"]) for state in states)
                    offset = done_trials
                    for job in job_list[start:]:
                        hi = offset + len(job[1])
                        job_meta.append((gid, offset, hi))
                        labels.append(_job_label(gid, group_keys[gid], config, offset, hi))
                        offset = hi
                    spans.append((gid, start, len(job_list)))
                try:
                    job_results = pool.map(_run_sweep_job, job_list, labels=labels)
                except PoisonJobError as poison:
                    _quarantine_poison(
                        poison, spans, job_meta, groups, group_keys, store, lease
                    )
                for gid, start, end in spans:
                    group = groups[gid]
                    fresh = [
                        result for job in job_results[start:end] for result in job
                    ]
                    if lease is not None:
                        try:
                            lease.heartbeat(gid)
                        except LeaseError:
                            # The lease expired mid-round and was reclaimed:
                            # drop this round's results for the group (the
                            # thief recomputes them bit-exactly) and re-sync.
                            continue
                    group["results"].extend(fresh)
                    if store is not None and group["factory"] is None:
                        store.write_group(gid, group["fingerprint"], group["results"])
                if budget_left is not None:
                    budget_left = max(0, budget_left - sum(want for _, want in wants))
    finally:
        if lease is not None:
            lease.release_all()
    return _assemble(points, point_group, groups)


def _cooperative_worker(points, kwargs) -> None:
    """Child entry point of the ``workers=N`` self-spawn (top-level: picklable)."""
    run_sweep(SweepPlan(points), **kwargs)


def _run_multi_worker(
    points, engine, jobs, batch_size, stopping, checkpoint,
    workers, lease_ttl, max_retries, job_timeout,
) -> list:
    """Self-spawned cooperative fleet: N lease-coordinated worker processes.

    Spawns ``workers`` child processes, each running the same plan
    cooperatively against the shared checkpoint (each with its own worker
    identity and ``jobs`` execution processes).  Child exit codes are
    deliberately ignored — surviving partial or even total worker loss is
    the point: the parent's own final cooperative pass drains whatever the
    children left behind and assembles the output from the store.  Poison
    quarantines are sticky markers, so a child that died on one re-raises
    here with the full diagnosis.
    """
    ttl = lease_ttl if lease_ttl is not None else DEFAULT_LEASE_TTL
    kwargs = dict(
        engine=engine, jobs=jobs, batch_size=batch_size, stopping=stopping,
        checkpoint=checkpoint, lease_ttl=ttl,
        max_retries=max_retries, job_timeout=job_timeout,
    )
    children = [
        multiprocessing.Process(target=_cooperative_worker, args=(points, kwargs))
        for _ in range(workers)
    ]
    for child in children:
        child.start()
    for child in children:
        child.join()
    return run_sweep(SweepPlan(points), **kwargs)


def run_sweep(
    plan,
    engine: str | None = None,
    jobs: int | None = 1,
    batch_size: int | None = None,
    stopping: StoppingRule | None = None,
    checkpoint: str | None = None,
    resume: bool = False,
    trial_budget: int | None = None,
    workers: int = 1,
    lease_ttl: float | None = None,
    worker_id: str | None = None,
    max_retries: int | None = None,
    job_timeout: float | None = None,
) -> list:
    """Execute a sweep plan; one :class:`SweepPointResult` per point, in order.

    Args:
        plan: a :class:`SweepPlan`, or any iterable of :class:`SweepPoint`
            / ``(config, n_trials[, key])`` tuples.
        engine: optional engine override applied to every point
            (``"scalar"`` / ``"batch"`` / ``"auto"``); ``None`` keeps each
            config's own engine.  Results never depend on the engine (the
            batch engine is seed-for-seed identical to the scalar one).
        jobs: worker processes.  ``1`` (default) runs in-process; ``N > 1``
            fans the work units out over a shared pool of ``N`` processes;
            ``None`` lets the executor pick.  Results never depend on
            ``jobs`` — the seed schedule is fixed per point.
        batch_size: optional override of each config's ``batch_size`` for
            slicing batch-engine points into work units (``None`` keeps the
            config's; a config value of 0 means "one slice per point" for
            serial runs and ``ceil(n_trials / jobs)`` slices under fan-out).
        stopping: optional sweep-wide :class:`StoppingRule` (points may
            override with their own).  ``None`` keeps every point on its
            fixed trial budget — byte-identical to the pre-adaptive
            scheduler.
        checkpoint: optional checkpoint directory.  Partial results are
            persisted atomically after every trial batch; a killed or
            crashed run continues bit-exactly via ``resume=True``.
        resume: continue the checkpoint already in ``checkpoint`` (which
            must exist and match this plan's configurations — a loud
            :class:`~repro.simulation.checkpoint.CheckpointError`
            otherwise).
        trial_budget: optional global trial ceiling across the whole
            sweep.  Minimum trial counts are always funded; the remainder
            flows to the neediest unfinished points (TOPSIS over CI width,
            completion deficit, per-trial cost) until the budget is spent.
            On resume, previously completed trials count against it.
        workers: cooperative worker *processes* to self-spawn (each runs
            the plan against the shared ``checkpoint`` with its own lease
            identity and ``jobs`` execution processes).  ``workers > 1``
            requires ``checkpoint=``; results are byte-identical to a
            solo run.  Equivalent to launching N ``repro sweep
            --checkpoint DIR --lease-ttl T`` invocations by hand.
        lease_ttl: enable **cooperative leasing** with this time-to-live
            in seconds: independent invocations sharing the checkpoint
            directory drain the plan together, each leasing the groups it
            executes.  A worker that stops heartbeating past the TTL
            loses its leases and its groups are reclaimed.  Requires
            ``checkpoint=``.
        worker_id: lease owner identity (default: a fresh
            ``host-pid-nonce`` from
            :func:`~repro.simulation.lease.worker_identity`).  Only
            meaningful with ``lease_ttl``.
        max_retries: per-job solo crash retries before poison-job
            quarantine (default
            :data:`~repro.simulation.parallel.DEFAULT_MAX_RETRIES`).
        job_timeout: optional per-job wall-clock ceiling in seconds;
            overruns are treated like worker crashes (retried, then
            quarantined).

    Returns:
        list of :class:`SweepPointResult`, aligned with the input points.

    Raises:
        PoisonJobError: a job repeatedly crashed its worker processes and
            was quarantined; with a checkpoint, every completed trial was
            persisted first and a sticky marker blocks silent retries.
    """
    points = list(plan.points if isinstance(plan, SweepPlan) else SweepPlan(plan).points)
    if not points:
        return []
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be a positive worker count or None, got {jobs}")
    if workers < 1:
        raise ValueError(f"workers must be a positive worker count, got {workers}")
    if stopping is not None and not isinstance(stopping, StoppingRule):
        raise TypeError(f"stopping must be a StoppingRule, got {type(stopping).__name__}")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint directory")
    if trial_budget is not None and trial_budget < 1:
        raise ValueError(f"trial_budget must be positive, got {trial_budget}")
    cooperative = workers > 1 or lease_ttl is not None
    if cooperative and checkpoint is None:
        raise ValueError(
            "cooperative execution (workers > 1 or lease_ttl=) requires a shared "
            "checkpoint directory (checkpoint=): the checkpoint store is the "
            "workers' only communication channel"
        )
    if worker_id is not None and lease_ttl is None:
        raise ValueError("worker_id= has no effect without lease_ttl= (cooperative leasing)")
    if cooperative and trial_budget is not None:
        raise ValueError(
            "trial_budget cannot be combined with cooperative execution: the "
            "budget ledger is per-invocation and would be double-counted "
            "across workers"
        )

    groups, point_group = _build_groups(points, engine, stopping)
    if cooperative and any(group["factory"] is not None for group in groups):
        raise ValueError(
            "observer points cannot run cooperatively: observer results are not "
            "checkpointed, so workers cannot share them; drop observer_factory "
            "or run with workers=1 and no lease_ttl"
        )
    retries = DEFAULT_MAX_RETRIES if max_retries is None else max_retries

    if workers > 1:
        return _run_multi_worker(
            points, engine, jobs, batch_size, stopping, checkpoint,
            workers, lease_ttl, max_retries, job_timeout,
        )

    sequential = cooperative or checkpoint is not None or trial_budget is not None or any(
        group["rule"] is not None for group in groups
    )
    if not sequential:
        return _run_single_pass(
            points, point_group, groups, jobs, batch_size, retries, job_timeout
        )
    return _run_sequential(
        points, point_group, groups, jobs, batch_size, checkpoint, resume,
        trial_budget, lease_ttl, worker_id, retries, job_timeout,
    )
