"""Sweep scheduler: whole parameter sweeps as batched, parallel work units.

Every quantitative claim of the paper is a parameter *sweep* — flooding
times across ``n`` (Theorem 3 scaling), across ``R`` and ``v``, across
mobility models and source placements.  Before this module each experiment
walked its grid point-by-point through :func:`~repro.simulation.runner
.run_trials`; the scheduler turns a grid into a first-class work plan:

* a :class:`SweepPlan` collects :class:`SweepPoint` entries — one
  ``(config, n_trials)`` pair per grid point, with an opaque ``key`` the
  caller uses to find the point again in the output;
* the **seed schedule is deterministic per point** and identical to
  :func:`~repro.simulation.runner.run_trials`:
  ``SeedSequence(config.seed).spawn(n_trials)`` — so scheduling a sweep is
  bit-for-bit equivalent to hand-looping ``run_trials`` over its points
  (enforced by ``tests/test_simulation_sweep.py``);
* **identical configurations are deduplicated**: duplicate points execute
  once, and a point asking for fewer trials of a config another point also
  sweeps receives a prefix of the shared trial sequence (seed-schedule
  prefixes are stable under ``SeedSequence.spawn``);
* each point dispatches through the configured **execution engine**
  (``engine="auto"`` resolves to the vectorized batch engine whenever both
  the protocol and the mobility model have native batched implementations)
  in batch slices, exactly like ``run_trials``;
* ``jobs=`` fans the work units out over processes via the worker
  machinery of :mod:`repro.simulation.parallel` — batch points ship one
  batch slice per job, scalar points one trial per job, all sharing one
  pool;
* points may attach **per-trial observers** (``observer_factory``), which
  forces the scalar engine for that point only (observers need the
  step-by-step :class:`~repro.simulation.engine.Simulation`); the observers
  ride back on ``FloodingResult.extras["observers"]``.

The output is point-indexed: one :class:`SweepPointResult` per input point
(in input order) carrying the raw results, the
:class:`~repro.simulation.results.TrialSummary`, and per-point completion
fractions — so callers stop silently averaging the finite subset and can
mask under-completed points.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from repro.simulation.config import FloodingConfig
from repro.simulation.parallel import _child_states, _dispatch, _rebuild_seed_seq
from repro.simulation.results import TrialSummary, summarize

__all__ = ["SweepPoint", "SweepPointResult", "SweepPlan", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a sweep: a configuration and a trial count.

    Attributes:
        config: the fully-specified experiment parameters.
        n_trials: independent repetitions (seed schedule:
            ``SeedSequence(config.seed).spawn(n_trials)``, as in
            ``run_trials``).
        key: opaque caller label (the swept value, a tuple, ...) echoed on
            the matching :class:`SweepPointResult`.
        observer_factory: optional picklable callable
            ``factory(config) -> list`` building fresh per-trial observers
            (:class:`~repro.simulation.engine.Simulation` observer
            protocol).  Forces the scalar engine for this point.
    """

    config: FloodingConfig
    n_trials: int
    key: object = None
    observer_factory: object = None

    def __post_init__(self):
        if not isinstance(self.config, FloodingConfig):
            raise TypeError(f"config must be a FloodingConfig, got {type(self.config).__name__}")
        if self.n_trials < 1:
            raise ValueError(f"n_trials must be positive, got {self.n_trials}")
        if self.observer_factory is not None and not callable(self.observer_factory):
            raise TypeError("observer_factory must be callable")


@dataclass
class SweepPointResult:
    """Executed point: raw results plus point-level aggregation.

    Attributes:
        key: the input point's label.
        config: the configuration **as executed** (engine override applied).
        n_trials: trials this point asked for (``len(results)``).
        engine: engine that actually ran the trials (``"scalar"`` or
            ``"batch"`` — never ``"auto"``).
        results: per-trial :class:`~repro.simulation.results.FloodingResult`
            in seed order.
        summary: flooding-time aggregation over the trials.
    """

    key: object
    config: FloodingConfig
    n_trials: int
    engine: str
    results: list = field(default_factory=list)
    summary: TrialSummary = None

    @property
    def completed_fraction(self) -> float:
        """Fraction of trials that reached full coverage."""
        return sum(1 for r in self.results if r.completed) / self.n_trials

    @property
    def finite_fraction(self) -> float:
        """Fraction of trials with a finite flooding time."""
        return self.summary.n_finite / self.summary.n_trials

    @property
    def completion_label(self) -> str:
        """``"finite/total"`` rendering for tables (e.g. ``"3/3"``)."""
        return f"{self.summary.n_finite}/{self.summary.n_trials}"

    @property
    def mean(self) -> float:
        """Mean finite flooding time (NaN when no trial finished)."""
        return self.summary.mean

    def masked_mean(self, min_finite_fraction: float = 0.5) -> float:
        """Mean flooding time, masked to NaN below a finite-trial floor.

        The unmasked ``summary.mean`` silently averages whichever subset
        happened to finish; this helper makes the bias explicit by
        refusing to report a moment when fewer than
        ``min_finite_fraction`` of the trials completed.
        """
        if self.finite_fraction < min_finite_fraction:
            return math.nan
        return self.summary.mean

    def observers(self, index: int = 0) -> list:
        """The per-trial observers built by the point's factory.

        Args:
            index: which observer of the factory's list to collect.

        Returns:
            one observer per trial, in seed order.
        """
        return [r.extras["observers"][index] for r in self.results]


class SweepPlan:
    """An ordered collection of sweep points."""

    def __init__(self, points=()):
        self.points = []
        for point in points:
            if isinstance(point, SweepPoint):
                self.points.append(point)
            else:  # (config, n_trials[, key]) tuples for convenience
                self.points.append(SweepPoint(*point))

    def add(
        self, config: FloodingConfig, n_trials: int, key=None, observer_factory=None
    ) -> SweepPoint:
        """Append a point; returns it (its ``key`` indexes the output)."""
        point = SweepPoint(config, n_trials, key=key, observer_factory=observer_factory)
        self.points.append(point)
        return point

    @classmethod
    def over_parameter(
        cls, config: FloodingConfig, parameter: str, values, n_trials: int = 5
    ) -> "SweepPlan":
        """The classic one-parameter sweep: one point per value, keyed by it."""
        plan = cls()
        for value in values:
            plan.add(config.with_options(**{parameter: value}), n_trials, key=value)
        return plan

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)


def _run_sweep_job(args) -> list:
    """Worker: execute one job — a (config, seed-states, factory) slice.

    Top-level so the process pool can pickle it; batch jobs carry a whole
    trial slice, scalar jobs a single trial each.
    """
    config, states, factory = args
    seqs = [_rebuild_seed_seq(state) for state in states]
    if factory is None and config.resolved_engine == "batch":
        from repro.simulation.batch import run_protocol_batch

        return run_protocol_batch(config, seqs)
    from repro.simulation.runner import run_flooding

    out = []
    for seq in seqs:
        extra = list(factory(config)) if factory is not None else None
        out.append(run_flooding(config, seed_seq=seq, extra_observers=extra))
    return out


def _executed_config(point: SweepPoint, engine) -> FloodingConfig:
    """Apply the sweep-level engine override and the observer constraint."""
    config = point.config
    if engine is not None:
        config = config.with_options(engine=engine)
    if point.observer_factory is not None:
        if config.engine == "batch":
            raise ValueError(
                f"point {point.key!r} attaches observers, which require the scalar "
                "engine; use engine='auto' or 'scalar' for observer points"
            )
        if config.engine != "scalar":  # "auto": observers resolve it to scalar
            config = config.with_options(engine="scalar")
    return config


def run_sweep(plan, engine: str | None = None, jobs: int | None = 1, batch_size: int | None = None) -> list:
    """Execute a sweep plan; one :class:`SweepPointResult` per point, in order.

    Args:
        plan: a :class:`SweepPlan`, or any iterable of :class:`SweepPoint`
            / ``(config, n_trials[, key])`` tuples.
        engine: optional engine override applied to every point
            (``"scalar"`` / ``"batch"`` / ``"auto"``); ``None`` keeps each
            config's own engine.  Results never depend on the engine (the
            batch engine is seed-for-seed identical to the scalar one).
        jobs: worker processes.  ``1`` (default) runs in-process; ``N > 1``
            fans the work units out over a shared pool of ``N`` processes;
            ``None`` lets the executor pick.  Results never depend on
            ``jobs`` — the seed schedule is fixed per point.
        batch_size: optional override of each config's ``batch_size`` for
            slicing batch-engine points into work units (``None`` keeps the
            config's; a config value of 0 means "one slice per point" for
            serial runs and ``ceil(n_trials / jobs)`` slices under fan-out).

    Returns:
        list of :class:`SweepPointResult`, aligned with the input points.
    """
    points = list(plan.points if isinstance(plan, SweepPlan) else SweepPlan(plan).points)
    if not points:
        return []
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be a positive worker count or None, got {jobs}")

    # --- dedup pass: one execution group per distinct (config, factory) ---
    # FloodingConfig holds dict fields, so grouping is by equality scan, not
    # hashing; sweeps are tens of points, never millions.
    groups = []  # [{config, factory, n_trials, point_ids}]
    point_group = []  # point index -> group index
    for index, point in enumerate(points):
        config = _executed_config(point, engine)
        for gid, group in enumerate(groups):
            if group["config"] == config and group["factory"] is point.observer_factory:
                group["n_trials"] = max(group["n_trials"], point.n_trials)
                point_group.append(gid)
                break
        else:
            point_group.append(len(groups))
            groups.append(
                {"config": config, "factory": point.observer_factory, "n_trials": point.n_trials}
            )

    # --- job construction: batch slices / scalar trials, shared pool ------
    workers = jobs if jobs is not None else (os.cpu_count() or 1)
    job_list = []
    bounds = []  # per group: (start, end) into job_list
    for group in groups:
        config = group["config"]
        states = _child_states(config, group["n_trials"])
        start = len(job_list)
        if group["factory"] is None and config.resolved_engine == "batch":
            # Deliberately NOT parallel._batch_jobs: that helper always
            # divides by the worker count, while a serial sweep must keep
            # one slice per point to mirror run_trials' single-batch layout
            # (slicing is result-invariant either way; this is about memory
            # and per-batch fixed costs).
            size = batch_size if batch_size is not None else config.batch_size
            if size <= 0:
                size = len(states) if workers <= 1 else math.ceil(len(states) / workers)
            size = max(1, size)
            job_list.extend(
                (config, states[lo:lo + size], None) for lo in range(0, len(states), size)
            )
        else:
            job_list.extend((config, [state], group["factory"]) for state in states)
        bounds.append((start, len(job_list)))

    job_results = _dispatch(_run_sweep_job, job_list, jobs)

    # --- reassembly: group trials -> per-point prefixes -------------------
    group_trials = [
        [result for job in job_results[start:end] for result in job] for start, end in bounds
    ]
    out = []
    for point, gid in zip(points, point_group):
        group = groups[gid]
        results = group_trials[gid][: point.n_trials]
        engine_used = "scalar" if group["factory"] is not None else group["config"].resolved_engine
        out.append(
            SweepPointResult(
                key=point.key,
                config=group["config"],
                n_trials=point.n_trials,
                engine=engine_used,
                results=results,
                summary=summarize(r.flooding_time for r in results),
            )
        )
    return out
