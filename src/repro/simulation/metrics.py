"""Per-step metric observers for the simulation engine.

Observers receive ``(t, positions, protocol, newly_informed)`` after every
step.  :class:`InformedRecorder` tracks the coverage curve;
:class:`ZoneRecorder` additionally classifies agents by Central Zone /
Suburb each step and records the per-zone completion times that the
``suburb_vs_cz`` experiment reports.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.zones import ZonePartition

__all__ = ["InformedRecorder", "ZoneRecorder"]


class InformedRecorder:
    """Coverage curve: number of informed agents after each step."""

    def __init__(self):
        self.history = []
        self.newly_per_step = []

    def start(self, positions: np.ndarray, protocol) -> None:
        """Record the initial state (before any step)."""
        self.history = [protocol.informed_count]
        self.newly_per_step = []

    def observe(self, t: int, positions: np.ndarray, protocol, newly: np.ndarray) -> None:
        self.history.append(protocol.informed_count)
        self.newly_per_step.append(int(newly.size))

    def informed_history(self) -> np.ndarray:
        return np.asarray(self.history, dtype=np.intp)


class ZoneRecorder:
    """Zone-resolved coverage: completion times for Central Zone and Suburb.

    At each step, agents are classified by their *current* cell's zone.  The
    Central Zone is "complete" at the first step where every agent currently
    located in a CZ cell is informed (vacuously if the CZ is empty of
    agents); likewise for the Suburb.  Because agents migrate between zones,
    completeness is monotone only once the global informed set saturates a
    zone's throughput — we record the first completion time, matching how
    the paper's Theorem 10 ("all CZ cells informed from ``t = 18 L/R`` on")
    is checked empirically.
    """

    def __init__(self, zones: ZonePartition):
        self.zones = zones
        self.cz_completion_time = math.inf
        self.suburb_completion_time = math.inf
        self.cz_fraction_history = []
        self.suburb_fraction_history = []

    def _fractions(self, positions: np.ndarray, informed: np.ndarray) -> tuple:
        in_cz = self.zones.in_central_zone(positions)
        cz_total = int(np.count_nonzero(in_cz))
        suburb_total = positions.shape[0] - cz_total
        cz_informed = int(np.count_nonzero(informed & in_cz))
        suburb_informed = int(np.count_nonzero(informed & ~in_cz))
        cz_frac = cz_informed / cz_total if cz_total else 1.0
        suburb_frac = suburb_informed / suburb_total if suburb_total else 1.0
        return cz_frac, suburb_frac

    def start(self, positions: np.ndarray, protocol) -> None:
        cz_frac, suburb_frac = self._fractions(positions, protocol.informed)
        self.cz_fraction_history = [cz_frac]
        self.suburb_fraction_history = [suburb_frac]
        if cz_frac >= 1.0:
            self.cz_completion_time = 0.0
        if suburb_frac >= 1.0:
            self.suburb_completion_time = 0.0

    def observe(self, t: int, positions: np.ndarray, protocol, newly: np.ndarray) -> None:
        cz_frac, suburb_frac = self._fractions(positions, protocol.informed)
        self.cz_fraction_history.append(cz_frac)
        self.suburb_fraction_history.append(suburb_frac)
        if cz_frac >= 1.0 and not math.isfinite(self.cz_completion_time):
            self.cz_completion_time = float(t)
        if suburb_frac >= 1.0 and not math.isfinite(self.suburb_completion_time):
            self.suburb_completion_time = float(t)
