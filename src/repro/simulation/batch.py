"""Batched trial execution: B independent protocol runs in lock-step.

The scalar :class:`~repro.simulation.engine.Simulation` advances one trial
at a time and pays the per-step Python overhead (mobility carry-over loop,
neighbor-index build, zone classification) once *per trial*.  The batch
engine advances ``B`` independent trials together over a ``(B, n, 2)``
position tensor, so every per-step cost is paid once per *batch*:

* mobility: :class:`~repro.mobility.base.BatchMobilityModel` implementations
  vectorize the kinematics across all replicas (flat ``(B * n, 2)`` state);
* communication: a :class:`~repro.protocols.base.BatchBroadcastState`
  answers every replica's neighbor queries with a single engine call
  via the tile-offset / cell-cover kernels of
  :class:`~repro.geometry.neighbors.BatchNeighborQuery` — **every**
  protocol in :data:`~repro.protocols.PROTOCOL_REGISTRY` has a batched
  state in :data:`~repro.protocols.BATCH_PROTOCOL_REGISTRY`;
* zone tracking: Central-Zone/Suburb classification runs over the flattened
  tensor in one call.

Reproducibility is the design constraint: each replica consumes randomness
only from its own spawned streams, in the scalar call order, so
:func:`run_protocol_batch` returns **exactly** the results of
:func:`~repro.simulation.runner.run_flooding` over the same seed sequences
(trial-for-trial, asserted by the parity tests — including the stochastic
protocols, whose per-replica generators replay the scalar draws).  Replicas
retire individually — at completion *or* when the protocol reports it can
no longer progress (parsimonious window close, SIR die-out, crash-fault
starvation) — freezing their state and generators exactly where the scalar
loop would have stopped.  The scalar engine remains the reference
implementation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.flooding import build_zone_partition, select_source
from repro.kernels import get_kernel, kernel_tier_label, use_kernel_tier
from repro.mobility import (
    BATCH_MOBILITY_REGISTRY,
    BatchMobilityModel,
    ReplicatedBatchMobility,
)
from repro.protocols import BATCH_PROTOCOL_REGISTRY
from repro.protocols.base import BatchBroadcastState
from repro.simulation.config import FloodingConfig
from repro.simulation.results import FloodingResult

__all__ = [
    "BatchSimulation",
    "build_batch_model",
    "build_batch_state",
    "run_protocol_batch",
    "run_flooding_batch",
]


def build_batch_model(config: FloodingConfig, rngs) -> BatchMobilityModel:
    """Instantiate the batch mobility model named by the configuration.

    Every model in :data:`~repro.mobility.BATCH_MOBILITY_REGISTRY` gets its
    native vectorized implementation (same constructor arguments as the
    scalar model, via :func:`~repro.simulation.runner.mobility_arguments`).
    All *registered* mobility names are batch-native; the
    :class:`~repro.mobility.base.ReplicatedBatchMobility` branch survives
    only as the escape hatch for user-supplied scalar models registered
    without a batch twin — correct (bit-identical to the scalar models) but
    not faster, and flagged in every replica's results so slow paths stay
    visible.

    Args:
        config: the experiment parameters.
        rngs: one mobility generator per trial (defines the batch size).
    """
    from repro.simulation.runner import build_model, mobility_arguments

    cls = BATCH_MOBILITY_REGISTRY.get(config.mobility)
    if cls is None:
        return ReplicatedBatchMobility([build_model(config, rng) for rng in rngs])
    args, kwargs = mobility_arguments(config)
    return cls(config.n, config.side, *args, rngs=rngs, **kwargs)


def build_batch_state(config: FloodingConfig, sources, rngs) -> BatchBroadcastState:
    """Instantiate the batched protocol state named by the configuration.

    The batch counterpart of
    :func:`~repro.simulation.runner.build_protocol`: same option handling
    (flooding inherits ``config.multi_hop``), plus one protocol generator
    per replica for the stochastic draws.
    """
    if config.protocol not in BATCH_PROTOCOL_REGISTRY:
        raise ValueError(
            f"protocol {config.protocol!r} has no batched implementation; "
            f"supported: {sorted(BATCH_PROTOCOL_REGISTRY)} "
            f"(use engine='scalar' or engine='auto')"
        )
    cls = BATCH_PROTOCOL_REGISTRY[config.protocol]
    options = dict(config.protocol_options)
    if config.protocol == "flooding":
        options.setdefault("multi_hop", config.multi_hop)
    return cls(
        config.n,
        config.side,
        config.radius,
        sources,
        rngs=rngs,
        backend=config.backend,
        neighbor_options=config.neighbor_options,
        **options,
    )


class BatchSimulation:
    """Drive ``B`` protocol replicas over a batch mobility process.

    The batch counterpart of :class:`~repro.simulation.engine.Simulation`:
    one :meth:`run` call advances every still-running replica per step and
    retires each replica at its own completion (or stall) step, so
    per-replica trajectories (step counts, coverage curves, zone completion
    times) match ``B`` independent scalar runs.

    Args:
        model: batch mobility model (owns the ``(B, n, 2)`` positions).
        protocol: batched informed state, sized for the same batch/agents.
        zones: optional :class:`~repro.core.zones.ZonePartition` — enables
            Central-Zone/Suburb completion tracking.

    Attributes:
        n_steps: ``(B,)`` steps actually simulated per replica.
        informed_counts_history: ``(T + 1, B)`` informed counts per step
            (row 0 is the initial state); replica ``b``'s scalar-equivalent
            coverage curve is the first ``n_steps[b] + 1`` rows of column
            ``b``.
        cz_completion_time / suburb_completion_time: ``(B,)`` first step at
            which every agent currently in the zone is informed (``inf`` if
            never; meaningful only when ``zones`` is set).
        source_in_central_zone: ``(B,)`` bool — zone of each replica's
            source at time 0 (only when ``zones`` is set).
    """

    def __init__(self, model: BatchMobilityModel, protocol: BatchBroadcastState, zones=None):
        if protocol.n != model.n:
            raise ValueError(
                f"protocol state is sized for {protocol.n} agents but the model has {model.n}"
            )
        if protocol.batch_size != model.batch_size:
            raise ValueError(
                f"protocol state has {protocol.batch_size} replicas "
                f"but the model has {model.batch_size}"
            )
        self.model = model
        self.protocol = protocol
        self.zones = zones
        batch = model.batch_size
        self.n_steps = np.zeros(batch, dtype=np.intp)
        self.informed_counts_history = None
        self.cz_completion_time = np.full(batch, np.inf)
        self.suburb_completion_time = np.full(batch, np.inf)
        self.source_in_central_zone = None

    @property
    def flooding(self) -> BatchBroadcastState:
        """Back-compat alias for :attr:`protocol` (pre-PR 3 name)."""
        return self.protocol

    def _zone_fractions(
        self, positions: np.ndarray, rows: np.ndarray, counts=None, need_mask=True
    ) -> tuple:
        """Informed fraction inside / outside the Central Zone, for the
        given replica rows only (completion times are monotone, so frozen
        replicas need no further classification).

        With ``need_mask=False`` the per-point mask is not materialized
        (callers that only record completion times pass it) and the
        compiled ``zone_counts`` kernel may serve the counts — the same
        cell classification and integer sums, so the fractions derived
        below are bit-identical.
        """
        subset = positions if rows.size == positions.shape[0] else positions[rows]
        k, n, _ = subset.shape
        if not need_mask and counts is not None:
            kernel = get_kernel("zone_counts")
            if kernel is not None:
                grid = self.zones.grid
                result = kernel(
                    np.ascontiguousarray(subset),
                    self.protocol.informed[rows],
                    grid.ell,
                    grid.m,
                    self.zones.cz_mask,
                )
                if result is not None:
                    cz_total, cz_informed = result
                    suburb_total = n - cz_total
                    suburb_informed = counts[rows] - cz_informed
                    with np.errstate(invalid="ignore", divide="ignore"):
                        cz_frac = np.where(
                            cz_total > 0, cz_informed / np.maximum(cz_total, 1), 1.0
                        )
                        suburb_frac = np.where(
                            suburb_total > 0,
                            suburb_informed / np.maximum(suburb_total, 1),
                            1.0,
                        )
                    return None, cz_frac, suburb_frac
        in_cz = self.zones.in_central_zone(subset.reshape(-1, 2)).reshape(k, n)
        informed = self.protocol.informed[rows]
        cz_total = np.count_nonzero(in_cz, axis=1)
        suburb_total = n - cz_total
        cz_informed = np.count_nonzero(informed & in_cz, axis=1)
        if counts is None:
            suburb_informed = np.count_nonzero(informed & ~in_cz, axis=1)
        else:
            # informed = (informed in CZ) + (informed in Suburb), exactly.
            suburb_informed = counts[rows] - cz_informed
        with np.errstate(invalid="ignore", divide="ignore"):
            cz_frac = np.where(cz_total > 0, cz_informed / np.maximum(cz_total, 1), 1.0)
            suburb_frac = np.where(
                suburb_total > 0, suburb_informed / np.maximum(suburb_total, 1), 1.0
            )
        return in_cz, cz_frac, suburb_frac

    def _record_zone_times(self, step: float, rows, cz_frac, suburb_frac) -> None:
        hit_cz = ~np.isfinite(self.cz_completion_time[rows]) & (cz_frac >= 1.0)
        self.cz_completion_time[rows[hit_cz]] = step
        hit_suburb = ~np.isfinite(self.suburb_completion_time[rows]) & (suburb_frac >= 1.0)
        self.suburb_completion_time[rows[hit_suburb]] = step

    def _active_mask(self) -> np.ndarray:
        """Replicas the scalar loop would still be stepping.

        :meth:`~repro.protocols.base.BatchBroadcastState.can_progress_mask`
        contractually excludes complete replicas, so it is the active mask.
        """
        return self.protocol.can_progress_mask()

    def run(self, max_steps: int, dt: float = 1.0) -> np.ndarray:
        """Simulate up to ``max_steps`` lock-steps.

        Each replica stops (freezes state and generators) at its own
        completion or stall step; the loop ends when every replica is done
        or the horizon is reached.

        Returns:
            ``(B,)`` number of steps actually simulated per replica.
        """
        if max_steps < 0:
            raise ValueError(f"max_steps must be non-negative, got {max_steps}")
        batch = self.model.batch_size
        positions = self.model.positions_view
        counts = self.protocol.informed_counts
        if self.zones is not None:
            all_rows = np.arange(batch)
            in_cz, cz_frac, suburb_frac = self._zone_fractions(positions, all_rows, counts)
            self._record_zone_times(0.0, all_rows, cz_frac, suburb_frac)
            self.source_in_central_zone = in_cz[all_rows, self.protocol.sources]
        counts_history = [counts]
        active = self._active_mask()
        step = 0
        while step < max_steps and active.any():
            step += 1
            positions = self.model.step(dt, active=active, copy=False)
            self.protocol.step(positions, active=active)
            counts = self.protocol.informed_counts
            counts_history.append(counts)
            self.n_steps[active] = step
            if self.zones is not None:
                # Zone completion times are first-hit records, so replicas
                # with both already set need no further classification.
                rows = np.nonzero(
                    active
                    & ~(
                        np.isfinite(self.cz_completion_time)
                        & np.isfinite(self.suburb_completion_time)
                    )
                )[0]
                if rows.size:
                    _in_cz, cz_frac, suburb_frac = self._zone_fractions(
                        positions, rows, counts, need_mask=False
                    )
                    self._record_zone_times(float(step), rows, cz_frac, suburb_frac)
            # Retirement is monotone (a scalar loop never resumes after it
            # breaks), so the mask only ever shrinks.
            active &= self._active_mask()
        self.informed_counts_history = np.asarray(counts_history, dtype=np.intp)
        return self.n_steps.copy()


def run_protocol_batch(config: FloodingConfig, seed_seqs) -> list:
    """Execute one batch of protocol trials; one result per seed sequence.

    The batched equivalent of calling
    :func:`~repro.simulation.runner.run_flooding` once per element of
    ``seed_seqs`` — same per-trial seed derivation (``spawn(3)`` into
    mobility / protocol / source streams), same results, returned in order.
    Works for every protocol in
    :data:`~repro.protocols.BATCH_PROTOCOL_REGISTRY`.

    Args:
        config: the experiment parameters.
        seed_seqs: per-trial ``numpy.random.SeedSequence`` objects; their
            count defines the batch size.
    """
    seed_seqs = list(seed_seqs)
    if not seed_seqs:
        raise ValueError("seed_seqs must contain at least one seed sequence")

    batch = len(seed_seqs)
    mobility_rngs = []
    protocol_rngs = []
    source_rngs = []
    for seed_seq in seed_seqs:
        mobility_ss, protocol_ss, source_ss = seed_seq.spawn(3)
        mobility_rngs.append(np.random.default_rng(mobility_ss))
        protocol_rngs.append(np.random.default_rng(protocol_ss))
        source_rngs.append(np.random.default_rng(source_ss))

    model = build_batch_model(config, mobility_rngs)
    positions0 = model.positions
    sources = np.array(
        [
            select_source(positions0[b], config.side, config.source, source_rngs[b])
            for b in range(batch)
        ],
        dtype=np.intp,
    )
    state = build_batch_state(config, sources, protocol_rngs)
    zones = None
    if config.track_zones:
        zones = build_zone_partition(
            config.n, config.side, config.radius, config.threshold_factor
        )
    simulation = BatchSimulation(model, state, zones=zones)
    # The configured kernel tier is active for the lock-step loop only —
    # bit-exact by contract, so the tier changes speed, never results.
    with use_kernel_tier(config.kernels):
        n_steps = simulation.run(config.max_steps)

    results = []
    complete = state.complete_mask()
    stalled = state.stalled_mask()
    counts = simulation.informed_counts_history
    extras = state.final_metrics(model.positions_view, zones)
    if isinstance(model, ReplicatedBatchMobility):
        # The mobility ran as a per-replica Python loop, so this batch saw
        # no mobility vectorization win.  Stamp every replica's extras so
        # each per-trial record is self-describing — visible in results,
        # not buried in logs.
        for extra in extras:
            extra["mobility_execution"] = "replicated (not vectorized)"
    for b in range(batch):
        history = counts[: n_steps[b] + 1, b].copy()
        completed = bool(complete[b])
        if completed:
            hits = np.nonzero(history >= config.n)[0]
            # Fault models can complete without the counts reaching n
            # (crashed agents never get informed): the completion step is
            # then the replica's last simulated step, exactly as in the
            # scalar engine (which stops stepping once complete).
            flooding_time = float(hits[0]) if hits.size else float(n_steps[b])
        else:
            flooding_time = math.inf
        result = FloodingResult(
            flooding_time=flooding_time,
            completed=completed,
            stalled=bool(stalled[b]),
            n_steps=int(n_steps[b]),
            informed_history=history,
            source=int(sources[b]),
            final_coverage=float(history[-1]) / config.n,
            extras={
                "n_agents": config.n,
                "config": config,
                "kernel_tier": kernel_tier_label(config.kernels),
            },
        )
        result.extras.update(extras[b])
        if zones is not None:
            result.cz_completion_time = float(simulation.cz_completion_time[b])
            result.suburb_completion_time = float(simulation.suburb_completion_time[b])
            result.source_in_central_zone = bool(simulation.source_in_central_zone[b])
        results.append(result)
    return results


def run_flooding_batch(config: FloodingConfig, seed_seqs) -> list:
    """Back-compat alias for :func:`run_protocol_batch` (pre-PR 3 name,
    when flooding was the only batched protocol)."""
    return run_protocol_batch(config, seed_seqs)
