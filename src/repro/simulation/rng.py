"""Deterministic random-stream management.

Every stochastic component (mobility, protocol, samplers) receives its own
``numpy.random.Generator`` spawned from a root ``SeedSequence``, so a whole
experiment — including multi-trial sweeps — is reproducible bit-for-bit
from a single integer seed, and trials are statistically independent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "spawn_seeds"]


def make_rng(seed=None) -> np.random.Generator:
    """A generator from an integer seed, ``SeedSequence``, or ``None``."""
    return np.random.default_rng(seed)


def spawn_rngs(seed, k: int) -> list:
    """``k`` independent generators derived from one root seed."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(k)]


def spawn_seeds(seed, k: int) -> list:
    """``k`` independent child ``SeedSequence`` objects from one root seed.

    Use when the children must themselves spawn (e.g. one seed per trial,
    which then splits into mobility and protocol streams).
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return root.spawn(k)
