"""On-disk sweep checkpoints: crash-safe partial results, bit-exact resume.

A long sweep that dies — crashed process, SIGKILL'd worker, exhausted
budget — used to restart from scratch.  This module persists per-point
partial results so :func:`repro.simulation.sweep.run_sweep` (and the
``repro sweep --resume`` / ``repro experiment --resume`` CLI paths) can
continue exactly where the run stopped.  Resume is **bit-exact by
construction**: the sweep seed schedule assigns trial ``i`` of a point the
``i``-th spawn of ``SeedSequence(config.seed)`` regardless of how the run
was segmented, so replaying trials ``[k, n)`` after restoring trials
``[0, k)`` produces byte-identical tables to an uninterrupted run
(enforced by ``tests/test_sweep_checkpoint.py``).

Layout of a checkpoint directory::

    DIR/
      manifest.json      # schema version + the plan's config fingerprints
      group_0000.json    # one file per deduplicated execution group:
      group_0001.json    #   {schema_version, config_hash, n_trials, results}
      group_0001.lease   # cooperative-mode work lease (simulation/lease.py)
      poison_0002.json   # sticky poison-job quarantine marker, if any

Every file is written **atomically and durably** (per-process temp file +
``os.replace`` + parent-directory fsync) after each trial batch, so a kill
at any instant leaves either the previous or the next consistent state —
never a torn file — and the temp names cannot collide across cooperating
worker processes sharing the directory.  The loader is deliberately
loud: truncated or corrupt JSON, an unknown schema version, a config hash
that no longer matches the plan (the config was edited between runs), or a
manifest/plan shape mismatch all raise :class:`CheckpointError` with an
actionable message instead of silently resuming wrong state.

The JSON uses the Python ``json`` module's ``Infinity`` literal for
incomplete trials' flooding times (non-strict JSON, round-trips with the
stdlib).  Observer-point results carry live observer objects and are not
serializable; those groups are skipped by the store and recomputed on
resume.

:func:`config_fingerprint` is the canonical configuration identity shared
with the sweep scheduler's dedup pass: the config's ``dataclasses.asdict``
payload serialized with **sorted keys** (so dict-valued fields like
``neighbor_options`` hash identically under key reordering) and SHA-256
hashed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import math
import os

import numpy as np

from repro.simulation.config import FloodingConfig
from repro.simulation.results import FloodingResult

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "SweepCheckpoint",
    "config_fingerprint",
    "encode_result",
    "decode_result",
]

#: Bumped only on breaking layout changes; the loader refuses anything else.
CHECKPOINT_SCHEMA_VERSION = 1

_MANIFEST = "manifest.json"
_KIND = "repro-sweep-checkpoint"


class CheckpointError(RuntimeError):
    """A checkpoint could not be created, validated, or loaded.

    Raised instead of silently resuming wrong state; the message always
    says what to do (pass ``--resume``, pick a fresh directory, or delete
    the offending file).
    """


# ----------------------------------------------------------------------
# Canonical configuration identity
# ----------------------------------------------------------------------
def config_fingerprint(config: FloodingConfig) -> str:
    """SHA-256 of the canonical JSON serialization of a configuration.

    Dict-valued fields (``mobility_options``, ``protocol_options``,
    ``neighbor_options``) are serialized with sorted keys, so two configs
    that differ only in dict insertion order — which compare equal and
    must share sweep trials — produce the same fingerprint.  Used as the
    sweep scheduler's dedup key and as the checkpoint validity stamp.
    """
    payload = dataclasses.asdict(config)
    blob = json.dumps(payload, sort_keys=True, default=repr, allow_nan=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Result codec
# ----------------------------------------------------------------------
def _encode_value(value, where: str):
    """JSON-compatible deep copy of an extras value (loud on unknowns)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_encode_value(v, where) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode_value(v, f"{where}.{k}") for k, v in value.items()}
    raise CheckpointError(
        f"cannot checkpoint {where}: value of type {type(value).__name__} is not "
        "JSON-serializable"
    )


def encode_result(result: FloodingResult) -> dict:
    """Serialize one trial outcome to a JSON-compatible dict.

    The ``extras`` entry ``"config"`` is dropped (restored from the sweep
    point's own config on load); live observer objects
    (``extras["observers"]``) are not serializable and make the result
    non-checkpointable.
    """
    extras = {k: v for k, v in result.extras.items() if k != "config"}
    if "observers" in extras:
        raise CheckpointError(
            "results carrying live observers cannot be checkpointed; observer "
            "points are recomputed on resume instead"
        )
    return {
        "flooding_time": float(result.flooding_time),
        "completed": bool(result.completed),
        "stalled": bool(result.stalled),
        "n_steps": int(result.n_steps),
        "informed_history": np.asarray(result.informed_history).tolist(),
        "source": int(result.source),
        "source_in_central_zone": (
            None if result.source_in_central_zone is None
            else bool(result.source_in_central_zone)
        ),
        "cz_completion_time": (
            None if result.cz_completion_time is None
            else float(result.cz_completion_time)
        ),
        "suburb_completion_time": (
            None if result.suburb_completion_time is None
            else float(result.suburb_completion_time)
        ),
        "final_coverage": float(result.final_coverage),
        "extras": _encode_value(extras, "extras"),
    }


_RESULT_FIELDS = (
    "flooding_time", "completed", "stalled", "n_steps", "informed_history",
    "source", "source_in_central_zone", "cz_completion_time",
    "suburb_completion_time", "final_coverage", "extras",
)


def decode_result(data: dict, config: FloodingConfig) -> FloodingResult:
    """Rebuild a :class:`FloodingResult` from its checkpoint payload."""
    missing = [name for name in _RESULT_FIELDS if name not in data]
    if missing:
        raise CheckpointError(
            f"checkpointed trial is missing fields {missing}: the file is from "
            "an incompatible writer or was corrupted; delete it to recompute"
        )
    extras = dict(data["extras"])
    extras["config"] = config
    return FloodingResult(
        flooding_time=float(data["flooding_time"]),
        completed=bool(data["completed"]),
        stalled=bool(data["stalled"]),
        n_steps=int(data["n_steps"]),
        informed_history=np.asarray(data["informed_history"], dtype=np.intp),
        source=int(data["source"]),
        source_in_central_zone=data["source_in_central_zone"],
        cz_completion_time=data["cz_completion_time"],
        suburb_completion_time=data["suburb_completion_time"],
        final_coverage=float(data["final_coverage"]),
        extras=extras,
    )


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
_TMP_COUNTER = itertools.count()


def _atomic_write_json(path: str, payload: dict) -> None:
    # The temp name is unique per process (pid + counter): two cooperating
    # workers racing the same target — e.g. both creating the manifest of a
    # fresh shared checkpoint — must never open each other's temp file and
    # tear it mid-write.
    tmp = f"{path}.tmp.{os.getpid()}.{next(_TMP_COUNTER)}"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, allow_nan=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(os.path.dirname(os.path.abspath(path)))


def _fsync_directory(directory: str) -> None:
    """Make a rename durable: fsync the directory holding the new entry.

    ``os.replace`` guarantees atomicity, not persistence — after a power
    loss the directory may still hold the old entry unless the directory
    inode itself was flushed.  Filesystems that refuse directory fsync
    (some network mounts) degrade to atomic-but-not-durable, which is the
    pre-PR-7 behaviour, so errors here are deliberately swallowed.
    """
    try:
        dir_fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def _load_json(path: str, what: str) -> dict:
    try:
        with open(path) as handle:
            data = json.load(handle)
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"corrupt or truncated {what} {path!r}: {error}; delete the file "
            "(or the whole checkpoint directory) to recompute from scratch"
        ) from error
    except OSError as error:
        raise CheckpointError(f"cannot read {what} {path!r}: {error}") from error
    if not isinstance(data, dict):
        raise CheckpointError(
            f"corrupt {what} {path!r}: expected a JSON object, got "
            f"{type(data).__name__}; delete it to recompute from scratch"
        )
    return data


def _check_schema(data: dict, path: str) -> None:
    version = data.get("schema_version")
    if version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint file {path!r} has schema version {version!r} but this "
            f"code reads version {CHECKPOINT_SCHEMA_VERSION}; re-run without "
            "--resume (fresh directory) or use a matching repro version"
        )


class SweepCheckpoint:
    """Directory-backed checkpoint store for one sweep plan.

    One file per deduplicated execution group, written atomically after
    each trial batch; a manifest records the plan's config fingerprints so
    a resume against an edited plan fails loudly instead of mixing trials
    from different configurations.

    Args:
        directory: checkpoint directory (created on :meth:`open` for fresh
            runs).
    """

    def __init__(self, directory: str):
        self.directory = str(directory)

    # -- lifecycle -----------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.directory, _MANIFEST)

    def _group_path(self, index: int) -> str:
        return os.path.join(self.directory, f"group_{index:04d}.json")

    def open(self, fingerprints: list, resume: bool, cooperative: bool = False) -> None:
        """Initialize a fresh checkpoint or validate an existing one.

        Args:
            fingerprints: config fingerprint per execution group, in plan
                order (the sweep's dedup pass computes them).
            resume: ``True`` continues the checkpoint already in the
                directory (which must exist and match the plan); ``False``
                starts fresh (the directory must not already hold a
                checkpoint — refusing to clobber is deliberate).
            cooperative: create-or-join semantics for multi-worker runs —
                an existing manifest is validated (like resume), a missing
                one created (like a fresh run).  Two fresh workers racing
                the creation both write the *identical* manifest through
                per-process temp files and an atomic rename, so either
                order is safe; ``resume`` is ignored.
        """
        manifest = self._manifest_path()
        exists = os.path.exists(manifest)
        if cooperative:
            if exists:
                self._validate_manifest(fingerprints)
            else:
                self._create_manifest(fingerprints)
            return
        if resume and not exists:
            raise CheckpointError(
                f"nothing to resume: {self.directory!r} contains no "
                f"{_MANIFEST}; run once with checkpointing enabled (no "
                "--resume) to create one"
            )
        if not resume and exists:
            raise CheckpointError(
                f"{self.directory!r} already contains a sweep checkpoint; pass "
                "resume=True (CLI: --resume) to continue it, or point the "
                "checkpoint at a fresh directory"
            )
        if resume:
            self._validate_manifest(fingerprints)
            return
        self._create_manifest(fingerprints)

    def _validate_manifest(self, fingerprints: list) -> None:
        manifest = self._manifest_path()
        data = _load_json(manifest, "checkpoint manifest")
        _check_schema(data, manifest)
        if data.get("kind") != _KIND:
            raise CheckpointError(
                f"{manifest!r} is not a sweep-checkpoint manifest "
                f"(kind={data.get('kind')!r}); wrong directory?"
            )
        stored = data.get("groups")
        if stored != list(fingerprints):
            raise CheckpointError(
                "the sweep plan does not match the checkpoint in "
                f"{self.directory!r}: the configurations (or their order) "
                "changed between runs — resume requires the identical "
                "plan; use a fresh checkpoint directory for the edited "
                "sweep"
            )

    def _create_manifest(self, fingerprints: list) -> None:
        os.makedirs(self.directory, exist_ok=True)
        _atomic_write_json(
            self._manifest_path(),
            {
                "schema_version": CHECKPOINT_SCHEMA_VERSION,
                "kind": _KIND,
                "groups": list(fingerprints),
            },
        )

    # -- per-group payloads --------------------------------------------
    def load_group(self, index: int, fingerprint: str, config: FloodingConfig) -> list:
        """Restore a group's completed trials (empty list when none yet)."""
        path = self._group_path(index)
        if not os.path.exists(path):
            return []
        data = _load_json(path, "checkpoint file")
        _check_schema(data, path)
        if data.get("config_hash") != fingerprint:
            raise CheckpointError(
                f"checkpoint file {path!r} was written for a different "
                "configuration (config hash mismatch — the sweep was edited "
                "between runs?); resume requires the identical plan, or a "
                "fresh checkpoint directory for the edited sweep"
            )
        results = data.get("results")
        if not isinstance(results, list) or data.get("n_trials") != len(results):
            raise CheckpointError(
                f"corrupt checkpoint file {path!r}: trial count does not match "
                "its payload; delete the file to recompute this point"
            )
        return [decode_result(entry, config) for entry in results]

    def write_group(self, index: int, fingerprint: str, results: list) -> None:
        """Atomically persist a group's completed trials (full rewrite)."""
        _atomic_write_json(
            self._group_path(index),
            {
                "schema_version": CHECKPOINT_SCHEMA_VERSION,
                "config_hash": fingerprint,
                "n_trials": len(results),
                "results": [encode_result(result) for result in results],
            },
        )

    # -- poison-job quarantine markers ---------------------------------
    def _poison_path(self, index: int) -> str:
        return os.path.join(self.directory, f"poison_{index:04d}.json")

    def write_poison(self, index: int, payload: dict) -> str:
        """Persist a poison-job quarantine marker for a group.

        The marker makes the quarantine *sticky* across workers and
        resumes: every later worker touching this checkpoint fails fast
        with the recorded diagnosis instead of re-crashing its own pool
        on the same input.  Returns the marker path (for the error
        message's "delete this to retry" instruction).
        """
        path = self._poison_path(index)
        _atomic_write_json(
            path,
            {
                "schema_version": CHECKPOINT_SCHEMA_VERSION,
                "kind": "repro-sweep-poison",
                **payload,
            },
        )
        return path

    def load_poison(self, index: int) -> dict | None:
        """The group's quarantine marker, or ``None`` when not quarantined."""
        path = self._poison_path(index)
        if not os.path.exists(path):
            return None
        data = _load_json(path, "poison-quarantine marker")
        data["path"] = path
        return data
