"""Group-level work leases: cooperative multi-worker sweep execution.

N independent ``repro sweep --checkpoint DIR`` invocations — on one host
or across machines sharing a filesystem — can drain a single sweep plan
cooperatively.  The unit of ownership is one checkpoint **group** (a
deduplicated execution group of :func:`repro.simulation.sweep.run_sweep`);
a worker leases the groups it is executing so the others move on to
unclaimed work instead of recomputing it.

The protocol is deliberately minimal, built from two filesystem
primitives that are atomic on POSIX (and on any shared filesystem worth
trusting with a checkpoint):

* **Acquisition** is an exclusive hard-link: the lease payload is written
  to a per-owner temp file and ``os.link``-ed to ``group_NNNN.lease``.
  The link fails with ``FileExistsError`` when the group is already
  leased, and — unlike ``O_CREAT | O_EXCL`` + ``write`` — the visible
  file is always *complete*: no reader ever observes a half-written
  lease.
* **Reclamation** of a stale lease (its ``heartbeat`` older than its
  ``ttl``) starts with an ``os.rename`` of the lease file to a
  per-owner tombstone.  Rename succeeds for exactly one claimant, so two
  workers discovering the same dead owner cannot both think they won;
  the winner unlinks the tombstone and re-acquires through the normal
  exclusive-link path (where it can still lose a photo-finish race,
  harmlessly).

Every worker either finishes its lease and releases it, or stops
heartbeating and provably *loses* it after the TTL — the fair-termination
discipline from PAPERS.md's session-types line of work, reduced to files.
Lease loss is detected on the next :meth:`LeaseManager.heartbeat`, which
raises :class:`LeaseError` so the ex-owner discards its uncommitted round
instead of clobbering the thief's progress.  Even the residual race (an
owner writing results in the instant its lease is being reclaimed) is
benign *for results*: the sweep seed schedule is keyed by trial index, so
any two workers computing the same trials write byte-identical payloads —
duplicated work, never divergent state.

Timestamps are wall-clock (``time.time``) because they must compare
across processes and hosts; they gate only *scheduling* (who may work on
what), never results, which stay bit-exact by the seed-schedule argument
above.  Cross-host use assumes clocks agree to within a fraction of the
TTL — the usual NTP situation; pick a generous ``--lease-ttl`` otherwise.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid

__all__ = [
    "DEFAULT_LEASE_TTL",
    "LEASE_SCHEMA_VERSION",
    "LeaseError",
    "LeaseManager",
    "worker_identity",
]

#: Bumped only on breaking payload changes.
LEASE_SCHEMA_VERSION = 1

#: Default lease time-to-live in seconds (heartbeats refresh it every
#: scheduler round, which is orders of magnitude shorter for live workers).
DEFAULT_LEASE_TTL = 30.0

_KIND = "repro-sweep-lease"


class LeaseError(RuntimeError):
    """A lease could not be refreshed or is otherwise in a bad state.

    Raised on heartbeat/release of a lease the caller no longer owns —
    the signal to discard uncommitted work for that group and re-sync
    from the checkpoint store.
    """


def worker_identity() -> str:
    """``host-pid-nonce`` owner id, unique even across forked twins.

    The nonce matters: a respawned worker with a recycled pid must not be
    mistaken for its dead predecessor when leases are compared by owner.
    """
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


class LeaseManager:
    """Filesystem lease table for one checkpoint directory.

    One instance per worker; all methods are keyed by the checkpoint
    group index.  See the module docstring for the acquisition and
    reclamation protocol.

    Args:
        directory: the sweep checkpoint directory the leases live beside.
        ttl: seconds a lease survives without a heartbeat before any
            worker may reclaim it.
        owner: worker identity (default: a fresh :func:`worker_identity`).
        clock: injection point for the timestamp source (tests).
    """

    def __init__(
        self,
        directory: str,
        ttl: float = DEFAULT_LEASE_TTL,
        owner: str | None = None,
        clock=time.time,
    ):
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.directory = str(directory)
        self.ttl = float(ttl)
        self.owner = owner if owner is not None else worker_identity()
        self.clock = clock
        self._owned = set()

    # -- paths & payloads ----------------------------------------------
    def path(self, index: int) -> str:
        return os.path.join(self.directory, f"group_{index:04d}.lease")

    def _payload(self) -> dict:
        now = self.clock()
        return {
            "schema_version": LEASE_SCHEMA_VERSION,
            "kind": _KIND,
            "owner": self.owner,
            "created": now,
            "heartbeat": now,
            "ttl": self.ttl,
        }

    def _write_tmp(self, index: int, payload: dict) -> str:
        # Owner ids embed pid + nonce, so the temp name cannot collide
        # with another worker racing the same lease.
        tmp = f"{self.path(index)}.claim-{self.owner}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        return tmp

    def read(self, index: int) -> dict | None:
        """The current lease payload, or ``None`` when unleased.

        Lease files only ever appear complete (exclusive-link creation,
        atomic-replace heartbeats), so a decode error means real
        corruption; it is reported as a stale foreign lease — eligible
        for reclamation, never silently trusted.
        """
        try:
            with open(self.path(index)) as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            return {"owner": "<unreadable>", "heartbeat": float("-inf"), "ttl": 0.0}
        if not isinstance(data, dict):
            return {"owner": "<unreadable>", "heartbeat": float("-inf"), "ttl": 0.0}
        return data

    def is_stale(self, payload: dict) -> bool:
        """Whether a lease payload has outlived its TTL."""
        ttl = payload.get("ttl", self.ttl)
        try:
            ttl = float(ttl)
        except (TypeError, ValueError):
            ttl = 0.0
        heartbeat = payload.get("heartbeat", float("-inf"))
        try:
            heartbeat = float(heartbeat)
        except (TypeError, ValueError):
            heartbeat = float("-inf")
        return self.clock() - heartbeat > ttl

    def owns(self, index: int) -> bool:
        return index in self._owned

    @property
    def owned(self) -> list:
        """Indices currently held, ascending."""
        return sorted(self._owned)

    # -- the protocol --------------------------------------------------
    def acquire(self, index: int) -> bool:
        """Try to lease a group; ``True`` on success.

        Failure means another worker holds a live lease — the caller
        moves on to other groups and retries later (by which time the
        holder has either finished and released, or gone stale and
        become reclaimable).
        """
        if index in self._owned:
            return True
        if self._acquire_fresh(index):
            return True
        return self._reclaim(index)

    def _reclaim(self, index: int) -> bool:
        """Steal a stale lease; ``True`` when this worker ends up owning it."""
        current = self.read(index)
        if current is None:
            # Released between our failed link and now: plain re-acquire.
            return self._acquire_fresh(index)
        if not self.is_stale(current):
            return False
        tombstone = f"{self.path(index)}.stale-{self.owner}"
        try:
            os.rename(self.path(index), tombstone)
        except FileNotFoundError:
            return False  # another claimant renamed it first
        os.unlink(tombstone)
        return self._acquire_fresh(index)

    def _acquire_fresh(self, index: int) -> bool:
        """One exclusive-link attempt, no reclamation recursion."""
        tmp = self._write_tmp(index, self._payload())
        try:
            os.link(tmp, self.path(index))
        except FileExistsError:
            return False  # lost the photo finish to another worker
        finally:
            os.unlink(tmp)
        self._owned.add(index)
        return True

    def heartbeat(self, index: int) -> None:
        """Refresh an owned lease's timestamp.

        Raises:
            LeaseError: this worker does not (or no longer does) own the
                lease — it went stale and was reclaimed.  The caller must
                discard uncommitted work for the group and re-sync from
                the checkpoint store.
        """
        if index not in self._owned:
            raise LeaseError(
                f"cannot heartbeat group {index}: this worker ({self.owner}) does "
                "not hold its lease"
            )
        current = self.read(index)
        if current is None or current.get("owner") != self.owner:
            self._owned.discard(index)
            holder = None if current is None else current.get("owner")
            raise LeaseError(
                f"lease on group {index} was lost by {self.owner} "
                f"(now held by {holder!r}): the worker went silent past the "
                f"{self.ttl}s TTL and the group was reclaimed; discarding this "
                "round's uncommitted results for it"
            )
        payload = dict(current)
        payload["heartbeat"] = self.clock()
        tmp = self._write_tmp(index, payload)
        os.replace(tmp, self.path(index))

    def release(self, index: int) -> None:
        """Give an owned lease back (idempotent; never throws on races)."""
        if index not in self._owned:
            return
        self._owned.discard(index)
        current = self.read(index)
        if current is not None and current.get("owner") == self.owner:
            try:
                os.unlink(self.path(index))
            except FileNotFoundError:
                pass

    def release_all(self) -> None:
        for index in list(self._owned):
            self.release(index)

    def __enter__(self) -> "LeaseManager":
        return self

    def __exit__(self, *exc) -> bool:
        self.release_all()
        return False
