"""Single-run and multi-trial flooding drivers.

:func:`run_flooding` executes one fully-specified
:class:`~repro.simulation.config.FloodingConfig` and returns a
:class:`~repro.simulation.results.FloodingResult`.  :func:`run_trials`
repeats it over independent seeds; :func:`sweep` varies one parameter and
aggregates (delegating to the sweep scheduler,
:mod:`repro.simulation.sweep`, which schedules whole experiment grids as
batched, parallel work units) — the workhorses behind every flooding
experiment and benchmark.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.flooding import build_zone_partition, select_source
from repro.kernels import kernel_tier_label, use_kernel_tier
from repro.mobility import MODEL_REGISTRY, NO_INIT_MODELS
from repro.protocols import PROTOCOL_REGISTRY, FloodingProtocol
from repro.simulation.config import FloodingConfig
from repro.simulation.engine import Simulation
from repro.simulation.metrics import InformedRecorder, ZoneRecorder
from repro.simulation.results import FloodingResult

__all__ = [
    "run_flooding",
    "run_trials",
    "sweep",
    "build_model",
    "build_protocol",
    "mobility_arguments",
]

#: Models whose constructors take no ``init`` argument (their stationary
#: law needs no warm-up state beyond uniform positions).  The canonical
#: set lives in :data:`repro.mobility.NO_INIT_MODELS` so the config layer
#: can reject ``init=`` for these models at construction time instead of
#: this module silently dropping it.
_NO_INIT_MODELS = NO_INIT_MODELS


def mobility_arguments(config: FloodingConfig) -> tuple:
    """Constructor arguments shared by the scalar and batch model builders.

    The single place config fields map onto per-model constructor
    signatures (speed vs ``move_radius``, ``init`` vocabulary, option
    defaults).  Returns ``(args, kwargs)`` such that
    ``ModelClass(config.n, config.side, *args, rng=rng, **kwargs)`` builds
    the scalar model and the registered batch class accepts the same call
    with ``rngs=`` — which is what keeps
    :func:`~repro.simulation.batch.build_batch_model` a registry lookup
    instead of a second if/elif chain.

    ``config.init`` is validated at ``FloodingConfig`` construction;
    models with a narrower init vocabulary (rwp / mrwp-pause / mrwp-speed
    reject ``"closed-form"``) raise their own ValueError rather than being
    silently coerced.
    """
    name = config.mobility
    options = dict(config.mobility_options)
    if name == "random-walk":
        return (), {"move_radius": config.speed, **options}
    if name == "mrwp-pause":
        options.setdefault("pause_time", 0.0)
    elif name == "mrwp-speed":
        # Degenerate default: a constant-speed trip law at config.speed.
        options.setdefault("v_min", config.speed)
        options.setdefault("v_max", config.speed)
        return (), {"init": config.init, **options}
    if name in _NO_INIT_MODELS:
        return (config.speed,), options
    return (config.speed,), {"init": config.init, **options}


def build_model(config: FloodingConfig, rng: np.random.Generator):
    """Instantiate the mobility model named by the configuration."""
    if config.mobility not in MODEL_REGISTRY:
        raise ValueError(f"unknown mobility model {config.mobility!r}")
    args, kwargs = mobility_arguments(config)
    return MODEL_REGISTRY[config.mobility](config.n, config.side, *args, rng=rng, **kwargs)


def build_protocol(config: FloodingConfig, source: int, rng: np.random.Generator):
    """Instantiate the protocol named by the configuration."""
    if config.protocol not in PROTOCOL_REGISTRY:
        raise ValueError(f"unknown protocol {config.protocol!r}")
    cls = PROTOCOL_REGISTRY[config.protocol]
    options = dict(config.protocol_options)
    engine_options = dict(config.neighbor_options)
    prune = engine_options.pop("prune", True)
    if cls is FloodingProtocol:
        options.setdefault("multi_hop", config.multi_hop)
        options.setdefault("prune", prune)
    return cls(
        config.n,
        config.side,
        config.radius,
        source,
        rng=rng,
        backend=config.backend,
        engine_options=engine_options,
        **options,
    )


def run_flooding(
    config: FloodingConfig,
    seed_seq: np.random.SeedSequence = None,
    extra_observers=None,
) -> FloodingResult:
    """Execute one flooding run.

    Args:
        config: the experiment parameters.
        seed_seq: optional externally supplied seed sequence (used by
            :func:`run_trials`); defaults to ``SeedSequence(config.seed)``.
        extra_observers: optional additional simulation observers (the
            :class:`~repro.simulation.engine.Simulation` observer
            protocol), appended after the built-in recorders and returned
            on ``result.extras["observers"]`` — the sweep scheduler's
            per-trial instrumentation hook.
    """
    root = seed_seq if seed_seq is not None else np.random.SeedSequence(config.seed)
    mobility_ss, protocol_ss, source_ss = root.spawn(3)
    model = build_model(config, np.random.default_rng(mobility_ss))
    positions = model.positions
    source = select_source(positions, config.side, config.source, np.random.default_rng(source_ss))
    protocol = build_protocol(config, source, np.random.default_rng(protocol_ss))

    observers = [InformedRecorder()]
    zones = None
    if config.track_zones:
        zones = build_zone_partition(
            config.n, config.side, config.radius, config.threshold_factor
        )
        if zones is not None:
            observers.append(ZoneRecorder(zones))
    extra = list(extra_observers) if extra_observers else []
    observers.extend(extra)

    simulation = Simulation(model, protocol, observers)
    # The configured kernel tier is active for the simulation loop only
    # (model/protocol construction above uses the library default), and is
    # bit-exact by contract — the tier changes speed, never results.
    with use_kernel_tier(config.kernels):
        n_steps = simulation.run(config.max_steps)

    informed_recorder = observers[0]
    history = informed_recorder.informed_history()
    completed = protocol.is_complete()
    if completed:
        hits = np.nonzero(history >= config.n)[0]
        # Fault models can complete without the counts reaching n (crashed
        # agents never get informed): the completion step is then the last
        # simulated step — the engine stops stepping once complete.
        flooding_time = float(hits[0]) if hits.size else float(n_steps)
    else:
        flooding_time = math.inf
    stalled = not completed and not protocol.can_progress()

    result = FloodingResult(
        flooding_time=flooding_time,
        completed=completed,
        stalled=stalled,
        n_steps=n_steps,
        informed_history=history,
        source=source,
        final_coverage=protocol.informed_count / config.n,
        extras={
            "n_agents": config.n,
            "config": config,
            "kernel_tier": kernel_tier_label(config.kernels),
        },
    )
    if extra:
        result.extras["observers"] = extra
    result.extras.update(protocol.final_metrics(model.positions, zones))
    if zones is not None:
        zone_recorder = observers[1]
        result.cz_completion_time = zone_recorder.cz_completion_time
        result.suburb_completion_time = zone_recorder.suburb_completion_time
        result.source_in_central_zone = bool(zones.in_central_zone(positions[source:source + 1])[0])
    return result


def run_trials(config: FloodingConfig, n_trials: int, stopping=None) -> list:
    """Run ``n_trials`` independent repetitions of a configuration.

    Trials derive their randomness from ``SeedSequence(config.seed)``; two
    calls with the same configuration produce identical results.  With
    ``engine="batch"`` (or ``engine="auto"`` resolving to it) the trials
    are advanced in lock-step by
    :class:`~repro.simulation.batch.BatchSimulation` (in slices of
    ``config.batch_size`` trials, all at once when 0) — same seed schedule,
    same results, one vectorized pass instead of a Python loop, for every
    protocol in :data:`~repro.protocols.BATCH_PROTOCOL_REGISTRY`.

    Args:
        stopping: optional
            :class:`~repro.simulation.sweep.StoppingRule` — run trials
            sequentially and stop once the rule fires, treating
            ``n_trials`` as the fixed budget the rule's bounds resolve
            against.  The result is a bit-exact prefix of the fixed run.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    if stopping is not None:
        from repro.simulation.sweep import SweepPoint, run_sweep

        (point,) = run_sweep([SweepPoint(config, n_trials, stopping=stopping)])
        return point.results
    root = np.random.SeedSequence(config.seed)
    children = root.spawn(n_trials)
    if config.resolved_engine == "batch":
        from repro.simulation.batch import run_protocol_batch

        size = config.batch_size if config.batch_size > 0 else n_trials
        out = []
        for start in range(0, n_trials, size):
            out.extend(run_protocol_batch(config, children[start:start + size]))
        return out
    return [run_flooding(config, seed_seq=child) for child in children]


def sweep(config: FloodingConfig, parameter: str, values, n_trials: int = 5) -> list:
    """Vary one configuration field, running ``n_trials`` repetitions per value.

    Since PR 4 this delegates to the sweep scheduler
    (:func:`repro.simulation.sweep.run_sweep`) with the legacy call's
    semantics (config's own engine, in-process execution) — same seed
    schedule, bit-identical results, plus config deduplication for free.

    Returns:
        list of ``(value, TrialSummary, results)`` tuples, in input order,
        where the summary aggregates flooding times.
    """
    from repro.simulation.sweep import SweepPlan, run_sweep

    plan = SweepPlan.over_parameter(config, parameter, values, n_trials)
    return [(point.key, point.summary, point.results) for point in run_sweep(plan)]
