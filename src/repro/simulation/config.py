"""Experiment configuration.

:class:`FloodingConfig` gathers every knob of a flooding run — network
parameters (``n``, ``L``, ``R``, ``v``), mobility model, protocol, source
placement, zone-partition constants — validates them once, and reports how
they relate to the paper's assumptions (Ineqs. 7-9).

The helper :func:`standard_config` builds the paper's canonical scaling
``L = sqrt(n)``, ``R = radius_factor * sqrt(log n)``,
``v = speed_fraction * R``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.core import theory
from repro.kernels import KERNEL_TIERS, resolve_kernel_tier
from repro.mobility import BATCH_MOBILITY_REGISTRY, MODEL_REGISTRY, NO_INIT_MODELS
from repro.protocols import BATCH_PROTOCOL_REGISTRY, PROTOCOL_REGISTRY

__all__ = ["FloodingConfig", "standard_config"]

_SOURCE_MODES = ("uniform", "central", "suburb")
_ENGINES = ("scalar", "batch", "auto")
_INITS = ("stationary", "closed-form", "uniform")

#: Option vocabulary per mobility model, enforced at construction so a
#: typo'd option fails here with the model name in the message — not as a
#: TypeError deep inside trial one.
_MOBILITY_OPTION_KEYS = {
    "mrwp": frozenset(),
    "mrwp-pause": frozenset({"pause_time"}),
    "mrwp-speed": frozenset({"v_min", "v_max"}),
    "rwp": frozenset({"pause_time"}),
    "random-walk": frozenset({"boundary"}),
    "random-direction": frozenset({"mean_leg"}),
    "ferry": frozenset({"inset", "jitter"}),
    "composite": frozenset({"ferries", "inset"}),
    "timetable": frozenset(
        {"routes", "dwell", "headway", "capacity", "riders", "board_radius", "jitter"}
    ),
}


@dataclass(frozen=True)
class FloodingConfig:
    """Parameters of one flooding experiment.

    Attributes:
        n: number of agents.
        side: square side ``L``.
        radius: transmission radius ``R``.
        speed: agent speed ``v``.
        max_steps: simulation horizon (flooding may finish earlier).
        source: ``"uniform"`` (random agent), ``"central"`` (agent closest
            to the center), ``"suburb"`` (agent closest to a corner), or an
            explicit agent index.
        mobility: mobility model name from
            :data:`repro.mobility.MODEL_REGISTRY`.
        mobility_options: extra keyword arguments for the mobility model
            constructor (e.g. ``{"pause_time": 10.0}`` for ``mrwp-pause``).
        protocol: protocol name from
            :data:`repro.protocols.PROTOCOL_REGISTRY`.
        protocol_options: extra keyword arguments for the protocol
            constructor (e.g. ``{"fanout": 2}``).
        init: mobility initialization mode — ``"stationary"`` (perfect
            simulation of the stationary law), ``"closed-form"`` (MRWP
            only), or ``"uniform"`` (cold start).  Validated here; models
            with a narrower vocabulary raise their own error at
            construction instead of silently substituting a default.
        backend: neighbor-engine backend.
        neighbor_options: tuning knobs for the neighbor subsystem —
            ``incremental`` (persistent spatial indexes refreshed from
            per-step displacements), ``prune`` (frontier source pruning),
            ``cell_size`` (grid-engine bucket override).  All strategies
            are exact, so these knobs never change results — only speed
            (asserted by the parity tests; toggled by ``repro bench`` to
            measure the PR 1 baseline).
        seed: root seed for all randomness of the run.
        threshold_factor: Definition 4's Central-Zone constant (3/8 paper).
        multi_hop: flooding semantics (see
            :class:`~repro.protocols.flooding.FloodingProtocol`).
        track_zones: record per-zone completion metrics (requires a cell
            grid satisfying Ineq. 6 — disabled automatically when the radius
            admits no grid).
        engine: multi-trial execution engine — ``"scalar"`` (the reference
            :class:`~repro.simulation.engine.Simulation`, one trial at a
            time), ``"batch"`` (lock-step
            :class:`~repro.simulation.batch.BatchSimulation`; every
            registered protocol, identical results, markedly faster for
            many trials), or ``"auto"`` (batch whenever both the protocol
            and the mobility model have native batched implementations,
            scalar otherwise).  Engine/protocol combinations are validated
            at construction time.
        batch_size: trials advanced per batch when ``engine="batch"``
            (0 — the default — runs all of a call's or worker's trials in
            one batch).  Has no effect on results, only on peak memory.
        kernels: hot-loop kernel tier — ``"numpy"`` (the vectorized
            reference paths), ``"compiled"`` (loop kernels via numba or
            the bundled C extension; an explicit demand that raises at
            run time when no provider is available), or ``"auto"`` (the
            default: compiled when a provider exists, numpy otherwise).
            Every compiled kernel is bit-exact against its numpy path
            (asserted by the parity sweeps), so the tier never changes
            results — only speed.
    """

    n: int
    side: float
    radius: float
    speed: float
    max_steps: int = 10_000
    source: object = "uniform"
    mobility: str = "mrwp"
    mobility_options: dict = field(default_factory=dict)
    protocol: str = "flooding"
    protocol_options: dict = field(default_factory=dict)
    init: str = "stationary"
    backend: str = "auto"
    neighbor_options: dict = field(default_factory=dict)
    seed: int = 0
    threshold_factor: float = 3.0 / 8.0
    multi_hop: bool = False
    track_zones: bool = True
    engine: str = "scalar"
    batch_size: int = 0
    kernels: str = "auto"

    def __post_init__(self):
        if self.n < 2:
            raise ValueError(f"n must be at least 2, got {self.n}")
        if self.side <= 0:
            raise ValueError(f"side must be positive, got {self.side}")
        if self.radius <= 0:
            raise ValueError(f"radius must be positive, got {self.radius}")
        if self.speed < 0:
            raise ValueError(f"speed must be non-negative, got {self.speed}")
        if self.max_steps < 1:
            raise ValueError(f"max_steps must be positive, got {self.max_steps}")
        if isinstance(self.source, str) and self.source not in _SOURCE_MODES:
            raise ValueError(
                f"source must be an index or one of {_SOURCE_MODES}, got {self.source!r}"
            )
        if isinstance(self.source, int) and not 0 <= self.source < self.n:
            raise ValueError(f"source index must be in [0, {self.n}), got {self.source}")
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {self.engine!r}")
        if self.init not in _INITS:
            raise ValueError(
                f"init must be one of {_INITS}, got {self.init!r} "
                "(mobility models may restrict further: 'closed-form' is mrwp-only)"
            )
        if self.mobility in NO_INIT_MODELS and self.init != "stationary":
            raise ValueError(
                f"mobility model {self.mobility!r} defines its own starting state "
                f"and takes no init= option (got init={self.init!r}); drop init or "
                "leave it at the default 'stationary'"
            )
        if self.mobility not in MODEL_REGISTRY:
            raise ValueError(
                f"unknown mobility model {self.mobility!r}; registered models: "
                f"{sorted(MODEL_REGISTRY)}"
            )
        self._validate_mobility_options()
        if self.protocol not in PROTOCOL_REGISTRY:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; registered protocols: "
                f"{sorted(PROTOCOL_REGISTRY)}"
            )
        # Engine/protocol combinations fail here, at construction, with a
        # clear message — not as a deep ValueError once trials start.
        if self.engine == "batch" and self.protocol not in BATCH_PROTOCOL_REGISTRY:
            raise ValueError(
                f"protocol {self.protocol!r} has no batched implementation "
                f"(batchable: {sorted(BATCH_PROTOCOL_REGISTRY)}); use "
                f"engine='scalar', or engine='auto' to fall back automatically"
            )
        unknown = set(self.neighbor_options) - {"incremental", "prune", "cell_size"}
        if unknown:
            raise ValueError(f"unknown neighbor options: {sorted(unknown)}")
        if self.batch_size < 0:
            raise ValueError(f"batch_size must be non-negative, got {self.batch_size}")
        if self.kernels not in KERNEL_TIERS:
            raise ValueError(
                f"kernels must be one of {KERNEL_TIERS}, got {self.kernels!r}"
            )

    def _validate_mobility_options(self) -> None:
        """Per-model option vocabulary and value checks, at config time."""
        allowed = _MOBILITY_OPTION_KEYS.get(self.mobility)
        if allowed is None:
            raise ValueError(
                f"mobility model {self.mobility!r} is registered but has no "
                "declared option vocabulary; add it to "
                "_MOBILITY_OPTION_KEYS in repro/simulation/config.py"
            )
        unknown = set(self.mobility_options) - allowed
        if unknown:
            raise ValueError(
                f"unknown mobility options for {self.mobility!r}: {sorted(unknown)} "
                f"(accepted: {sorted(allowed) or 'none'})"
            )
        options = self.mobility_options
        pause_time = options.get("pause_time")
        if pause_time is not None and pause_time < 0:
            raise ValueError(f"pause_time must be non-negative, got {pause_time}")
        if self.mobility == "mrwp-speed":
            v_min = options.get("v_min", self.speed)
            v_max = options.get("v_max", self.speed)
            if not 0 < v_min <= v_max:
                raise ValueError(
                    f"mrwp-speed needs 0 < v_min <= v_max, got [{v_min}, {v_max}]"
                )
        mean_leg = options.get("mean_leg")
        if mean_leg is not None and mean_leg <= 0:
            raise ValueError(f"mean_leg must be positive, got {mean_leg}")
        inset = options.get("inset")
        if inset is not None and not 0 <= inset < self.side / 2:
            raise ValueError(f"inset must be in [0, side/2), got {inset}")
        ferries = options.get("ferries")
        if ferries is not None and not 1 <= int(ferries) <= self.n - 2:
            raise ValueError(
                f"ferries must be in [1, n - 2] (need an MRWP background), got {ferries}"
            )
        jitter = options.get("jitter")
        if jitter is not None and not 0 <= jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        riders = options.get("riders")
        if riders is not None and not 0 <= int(riders) <= self.n - 1:
            raise ValueError(
                f"riders must be in [0, n - 1] (at least one vehicle), got {riders}"
            )
        dwell = options.get("dwell")
        if dwell is not None and isinstance(dwell, (int, float)) and dwell < 0:
            raise ValueError(f"dwell must be non-negative, got {dwell}")
        headway = options.get("headway")
        if headway is not None and not headway > 0:
            raise ValueError(f"headway must be positive, got {headway}")
        capacity = options.get("capacity")
        if capacity is not None and int(capacity) < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        board_radius = options.get("board_radius")
        if board_radius is not None and not board_radius > 0:
            raise ValueError(f"board_radius must be positive, got {board_radius}")

    def with_options(self, **changes) -> "FloodingConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def resolved_engine(self) -> str:
        """The engine that will actually run.

        ``"auto"`` picks the batch engine exactly when **both** the
        protocol and the mobility model have native vectorized
        implementations (:data:`~repro.protocols.BATCH_PROTOCOL_REGISTRY`
        and :data:`~repro.mobility.BATCH_MOBILITY_REGISTRY`).  Every
        *registered* mobility name is batch-native since PR 9, so for
        registered models this reduces to the protocol check; the mobility
        clause still matters for user-supplied models registered without a
        batch twin, which ``auto`` keeps on the scalar engine (their
        :class:`~repro.mobility.base.ReplicatedBatchMobility` adapter is a
        per-replica Python loop, so batching buys nothing).  An explicit
        ``engine="batch"`` still forces the batch engine (with the
        fallback, flagged in the results) for such models.
        """
        if self.engine != "auto":
            return self.engine
        if self.protocol not in BATCH_PROTOCOL_REGISTRY:
            return "scalar"
        return "batch" if self.mobility in BATCH_MOBILITY_REGISTRY else "scalar"

    @property
    def resolved_kernels(self) -> str:
        """The kernel tier that will actually run (``"numpy"``/``"compiled"``).

        ``"auto"`` resolves against the cached provider probes (numba,
        then the bundled C extension); an explicit ``"compiled"`` with no
        provider available raises here rather than deep inside a run.
        """
        return resolve_kernel_tier(self.kernels)

    def assumptions(self, c1: float = theory.PAPER_C1) -> theory.Assumptions:
        """Check this configuration against the paper's hypotheses."""
        return theory.check_assumptions(self.n, self.side, self.radius, self.speed, c1=c1)

    def upper_bound(self) -> float:
        """Theorem 3's bound evaluated at this configuration."""
        return theory.flooding_upper_bound(self.n, self.side, self.radius, self.speed)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"n={self.n} L={self.side:.4g} R={self.radius:.4g} v={self.speed:.4g} "
            f"model={self.mobility} protocol={self.protocol} source={self.source} seed={self.seed}"
        )


def standard_config(
    n: int,
    radius_factor: float = 2.0,
    speed_fraction: float = 0.25,
    **overrides,
) -> FloodingConfig:
    """The paper's canonical scaling: ``L = sqrt n``, ``R = c sqrt(log n)``.

    Args:
        n: number of agents.
        radius_factor: ``c`` in ``R = c * sqrt(log n)`` — the paper's regime
            just above the Central-Zone density threshold (its own constant
            is un-optimized; see DESIGN.md).
        speed_fraction: ``v = speed_fraction * R``; 0.25 keeps the
            slow-mobility assumption comfortably satisfied.
        overrides: any other :class:`FloodingConfig` field.
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    side = math.sqrt(n)
    radius = radius_factor * math.sqrt(math.log(n))
    speed = speed_fraction * radius
    return FloodingConfig(n=n, side=side, radius=radius, speed=speed, **overrides)
