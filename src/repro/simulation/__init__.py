"""Simulation engine: configs, seeded runs, multi-trial aggregation.

Two execution engines share one seed schedule: the scalar
:class:`Simulation` (the reference, one trial at a time) and the vectorized
:class:`BatchSimulation` (``engine="batch"`` — B trials in lock-step,
identical results, much faster for multi-trial workloads).
"""

from repro.simulation.batch import (
    BatchSimulation,
    build_batch_model,
    build_batch_state,
    run_flooding_batch,
    run_protocol_batch,
)
from repro.simulation.config import FloodingConfig, standard_config
from repro.simulation.engine import Simulation
from repro.simulation.metrics import InformedRecorder, ZoneRecorder
from repro.simulation.checkpoint import (
    CheckpointError,
    SweepCheckpoint,
    config_fingerprint,
)
from repro.simulation.parallel import WorkerPool, run_trials_parallel, sweep_parallel
from repro.simulation.results import FloodingResult, TrialSummary, summarize
from repro.simulation.rng import make_rng, spawn_rngs, spawn_seeds
# NOTE: the sweep *module* import must precede the runner import — both
# bind the package attribute ``sweep`` (the submodule implicitly, the
# legacy aggregation function explicitly), and the function is the public
# API here.  Reach the module as ``repro.simulation.sweep`` via a direct
# ``from repro.simulation.sweep import ...`` (or sys.modules), never via
# the package attribute.
from repro.simulation.sweep import (
    StoppingRule,
    SweepPlan,
    SweepPoint,
    SweepPointResult,
    run_sweep,
)
from repro.simulation.runner import (
    build_model,
    build_protocol,
    run_flooding,
    run_trials,
    sweep,
)

__all__ = [
    "FloodingConfig",
    "standard_config",
    "Simulation",
    "BatchSimulation",
    "build_batch_model",
    "build_batch_state",
    "run_flooding_batch",
    "run_protocol_batch",
    "InformedRecorder",
    "ZoneRecorder",
    "FloodingResult",
    "TrialSummary",
    "summarize",
    "make_rng",
    "spawn_rngs",
    "spawn_seeds",
    "run_flooding",
    "run_trials",
    "run_trials_parallel",
    "sweep",
    "sweep_parallel",
    "StoppingRule",
    "SweepPlan",
    "SweepPoint",
    "SweepPointResult",
    "run_sweep",
    "SweepCheckpoint",
    "CheckpointError",
    "config_fingerprint",
    "WorkerPool",
    "build_model",
    "build_protocol",
]
