"""The step engine coupling mobility, protocol, and observers.

One simulated time step is: **move** every agent (mobility model), then run
one **communication round** (protocol) over the fresh snapshot — exactly
the paper's semantics, where an agent informed during step ``t`` transmits
from step ``t + 1``.  Observers are notified after each step.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel
from repro.protocols.base import BroadcastProtocol

__all__ = ["Simulation"]


class Simulation:
    """Drive a protocol over a mobility process.

    Args:
        model: mobility model (owns agent positions).
        protocol: broadcast protocol (owns informed state); must have been
            constructed for the same number of agents.
        observers: objects with optional ``start(positions, protocol)`` and
            ``observe(t, positions, protocol, newly)`` methods.
    """

    def __init__(self, model: MobilityModel, protocol: BroadcastProtocol, observers=()):
        if protocol.n != model.n:
            raise ValueError(
                f"protocol is sized for {protocol.n} agents but the model has {model.n}"
            )
        self.model = model
        self.protocol = protocol
        self.observers = list(observers)
        self.steps_run = 0

    def run(self, max_steps: int, stop_when_complete: bool = True, dt: float = 1.0) -> int:
        """Simulate up to ``max_steps`` steps.

        Stops early when the protocol completes (all informed) or reports it
        can no longer progress.

        Returns:
            the number of steps actually simulated.
        """
        if max_steps < 0:
            raise ValueError(f"max_steps must be non-negative, got {max_steps}")
        positions = self.model.positions
        for observer in self.observers:
            start = getattr(observer, "start", None)
            if start is not None:
                start(positions, self.protocol)
        for _ in range(max_steps):
            if stop_when_complete and (
                self.protocol.is_complete() or not self.protocol.can_progress()
            ):
                break
            positions = self.model.step(dt)
            newly = self.protocol.step(positions)
            self.steps_run += 1
            for observer in self.observers:
                observer.observe(self.steps_run, positions, self.protocol, newly)
        return self.steps_run

    @property
    def informed(self) -> np.ndarray:
        """Copy of the protocol's informed mask."""
        return self.protocol.informed.copy()
